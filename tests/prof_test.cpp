// Per-span performance attribution: the exactness invariant (per-span
// counter deltas sum to the run-wide instrumentation totals), the
// flamegraph export (parse-back + determinism), the straggler verdicts
// and the progress heartbeat.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cachesim/shared.hpp"
#include "common/error.hpp"
#include "prof/attribution.hpp"
#include "prof/flamegraph.hpp"
#include "prof/progress.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace nustencil {
namespace {

constexpr int kThreads = 2;
constexpr Index kEdge = 20;
constexpr long kSteps = 4;

const topology::MachineSpec& machine() {
  static const topology::MachineSpec m = topology::xeonX7550();
  return m;
}

/// Runs `name` with every instrumentation source attached (traffic
/// recorder, cache simulator, trace with the per-span sampler) so the
/// resulting events carry full counter deltas.
schemes::RunResult run_profiled(const std::string& name,
                                sched::Schedule schedule, trace::Trace& tr,
                                cachesim::SharedHierarchy& sim,
                                int threads = kThreads) {
  const auto scheme = schemes::make_scheme(name);
  schemes::RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = kSteps;
  cfg.instrument = true;
  cfg.schedule = schedule;
  cfg.cache_sim = &sim;
  cfg.machine = &machine();
  // Scatter across sockets so remote traffic (and hence the Remote
  // counters) is exercised, mirroring bench/regress.
  cfg.pin_policy = numa::PinPolicy::Scatter;
  cfg.trace = &tr;
  cfg.profile_spans = true;
  if (name == "CATS" || name == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  core::Problem problem(Coord{kEdge, kEdge, kEdge},
                        core::StencilSpec::paper_3d7p());
  return scheme->run(problem, cfg);
}

/// Sum of every per-span counter delta held in the event rings.
trace::CounterSet sum_event_deltas(const trace::Trace& tr) {
  trace::CounterSet sum;
  for (int tid = 0; tid < tr.num_threads(); ++tid)
    for (const trace::Event& e : tr.thread(tid)->events())
      if (e.has_counters) sum.accumulate(e.counters);
  return sum;
}

/// Sum of the out-of-ring per-phase counter accumulators.
trace::CounterSet sum_counter_totals(const trace::Trace& tr) {
  trace::CounterSet sum;
  for (int tid = 0; tid < tr.num_threads(); ++tid)
    for (int p = 0; p < trace::kNumPhases; ++p)
      sum.accumulate(
          tr.thread(tid)->counter_total(static_cast<trace::Phase>(p)));
  return sum;
}

TEST(ProfAttribution, SpanDeltasSumExactlyToRunTotals) {
  for (const std::string name : {"NaiveSSE", "nuCATS", "nuCORALS"}) {
    for (const auto schedule :
         {sched::Schedule::Static, sched::Schedule::Steal}) {
      SCOPED_TRACE(name + (schedule == sched::Schedule::Steal ? "/steal"
                                                              : "/static"));
      trace::Trace tr;
      cachesim::SharedHierarchy sim(machine(), kThreads);
      const schemes::RunResult run = run_profiled(name, schedule, tr, sim);

      // The default ring comfortably holds this small run, so the event
      // deltas are complete and must equal the out-of-ring accumulators.
      for (int tid = 0; tid < tr.num_threads(); ++tid)
        ASSERT_EQ(tr.thread(tid)->dropped(), 0u);
      const trace::CounterSet events = sum_event_deltas(tr);
      const trace::CounterSet totals = sum_counter_totals(tr);
      EXPECT_EQ(events.v, totals.v);

      // ... and both must equal the run-wide instrumentation totals:
      // every update / traffic byte / cache access happens inside a
      // counter-carrying span, so nothing leaks past the sampler.
      EXPECT_EQ(totals.at(trace::SpanCounter::Updates),
                static_cast<std::uint64_t>(run.updates));
      EXPECT_EQ(totals.at(trace::SpanCounter::LocalBytes),
                run.traffic.local_bytes);
      EXPECT_EQ(totals.at(trace::SpanCounter::RemoteBytes),
                run.traffic.remote_bytes);
      EXPECT_EQ(totals.at(trace::SpanCounter::UnownedBytes),
                run.traffic.unowned_bytes);
      const cachesim::HierarchyTraffic ht = sim.traffic();
      const int levels = std::min<int>(trace::CounterSet::kMaxCacheLevels,
                                       static_cast<int>(ht.level.size()));
      for (int l = 0; l < levels; ++l) {
        EXPECT_EQ(totals.level_hits(l), ht.level[l].hits) << "L" << l + 1;
        EXPECT_EQ(totals.level_misses(l), ht.level[l].misses) << "L" << l + 1;
      }

      // The summary in RunResult carries the same exact totals.
      ASSERT_TRUE(run.prof.enabled);
      EXPECT_EQ(run.prof.totals.v, totals.v);
      EXPECT_GT(run.prof.sampled_spans, 0u);
      EXPECT_EQ(run.prof.dropped_events, 0u);
    }
  }
}

TEST(ProfAttribution, OnlyTileAndInitSpansCarryCounters) {
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  run_profiled("nuCORALS", sched::Schedule::Static, tr, sim);
  std::uint64_t carrying = 0;
  for (int tid = 0; tid < tr.num_threads(); ++tid) {
    for (const trace::Event& e : tr.thread(tid)->events()) {
      if (trace::phase_carries_counters(e.phase)) {
        EXPECT_TRUE(e.has_counters) << trace::phase_name(e.phase);
        ++carrying;
      } else {
        EXPECT_FALSE(e.has_counters) << trace::phase_name(e.phase);
      }
    }
  }
  EXPECT_GT(carrying, 0u);
}

/// Parses "stack weight" folded lines; fails the test on malformed input.
std::map<std::string, std::uint64_t> parse_folded(const std::string& text) {
  std::map<std::string, std::uint64_t> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    const std::string stack = line.substr(0, space);
    const std::uint64_t weight = std::stoull(line.substr(space + 1));
    EXPECT_FALSE(stack.empty());
    EXPECT_GT(weight, 0u) << "zero-weight lines must be skipped: " << line;
    EXPECT_EQ(out.count(stack), 0u) << "duplicate stack: " << stack;
    out[stack] = weight;
  }
  return out;
}

TEST(ProfFlamegraph, RemoteWeightsParseBackToTheExactTotal) {
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  const schemes::RunResult run =
      run_profiled("NaiveSSE", sched::Schedule::Static, tr, sim);
  ASSERT_GT(run.traffic.remote_bytes, 0u)
      << "scatter pinning must generate remote traffic";

  std::ostringstream os;
  prof::write_flamegraph(os, tr, "NaiveSSE", prof::FlameWeight::RemoteBytes);
  const auto folded = parse_folded(os.str());
  ASSERT_FALSE(folded.empty());
  std::uint64_t total = 0;
  for (const auto& [stack, weight] : folded) {
    EXPECT_EQ(stack.rfind("NaiveSSE;worker:", 0), 0u) << stack;
    total += weight;
  }
  // Remote bytes only accrue inside counter-carrying spans, so the
  // folded weights reproduce the run total exactly.
  EXPECT_EQ(total, run.traffic.remote_bytes);
}

TEST(ProfFlamegraph, TimeWeightCoversEveryThread) {
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  run_profiled("nuCORALS", sched::Schedule::Static, tr, sim);
  std::ostringstream os;
  prof::write_flamegraph(os, tr, "nuCORALS", prof::FlameWeight::Time);
  const auto folded = parse_folded(os.str());
  ASSERT_FALSE(folded.empty());
  for (int tid = 0; tid < kThreads; ++tid) {
    const std::string frame =
        "nuCORALS;worker:" + std::to_string(tid);
    bool seen = false;
    for (const auto& [stack, weight] : folded)
      seen = seen || stack.rfind(frame, 0) == 0;
    EXPECT_TRUE(seen) << "no stacks for thread " << tid;
  }
}

TEST(ProfFlamegraph, CounterWeightedOutputIsDeterministic) {
  // Two identical static runs must fold to byte-identical output for the
  // counter weightings (wall-time weights are inherently noisy).  Remote
  // bytes are thread-private and deterministic at any thread count; the
  // cache-miss weights are only deterministic single-threaded, because
  // shared levels (the Xeon's per-socket L3) make each core's hit/miss
  // outcome depend on how the threads' accesses interleave.
  const auto fold = [](prof::FlameWeight w, int threads) {
    trace::Trace tr;
    cachesim::SharedHierarchy sim(machine(), threads);
    run_profiled("nuCORALS", sched::Schedule::Static, tr, sim, threads);
    std::ostringstream os;
    prof::write_flamegraph(os, tr, "nuCORALS", w);
    return os.str();
  };
  EXPECT_EQ(fold(prof::FlameWeight::RemoteBytes, kThreads),
            fold(prof::FlameWeight::RemoteBytes, kThreads));
  EXPECT_EQ(fold(prof::FlameWeight::CacheMisses, 1),
            fold(prof::FlameWeight::CacheMisses, 1));
}

TEST(ProfFlamegraph, WeightNamesRoundTrip) {
  using prof::FlameWeight;
  for (const auto w : {FlameWeight::Time, FlameWeight::RemoteBytes,
                       FlameWeight::CacheMisses})
    EXPECT_EQ(prof::parse_flame_weight(prof::flame_weight_name(w)), w);
  EXPECT_THROW(prof::parse_flame_weight("cycles"), Error);
  try {
    prof::parse_flame_weight("cycles");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cycles"), std::string::npos);
  }
}

prof::SpanRecord tile_span(std::int64_t dur_ns, std::int64_t exclude_ns) {
  prof::SpanRecord s;
  s.phase = trace::Phase::Tile;
  s.start_ns = 0;
  s.end_ns = dur_ns;
  s.exclude_ns = exclude_ns;
  return s;
}

TEST(ProfVerdict, WaitPhasesAreSpinBoundByDefinition) {
  for (const auto p : {trace::Phase::BarrierWait, trace::Phase::SpinWait}) {
    prof::SpanRecord s;
    s.phase = p;
    s.end_ns = 1000;
    const prof::Attribution a = prof::attribute(s);
    EXPECT_EQ(a.verdict, prof::Verdict::SpinBound);
    EXPECT_DOUBLE_EQ(a.spin_frac, 1.0);
  }
}

TEST(ProfVerdict, NestedWaitingDominatesTheSpan) {
  prof::SpanRecord s = tile_span(1000000, 600000);
  const prof::Attribution a = prof::attribute(s);
  EXPECT_EQ(a.verdict, prof::Verdict::SpinBound);
  EXPECT_DOUBLE_EQ(a.spin_frac, 0.6);
}

TEST(ProfVerdict, RemoteTrafficDominates) {
  prof::SpanRecord s = tile_span(1000, 0);
  s.counters.at(trace::SpanCounter::LocalBytes) = 100;
  s.counters.at(trace::SpanCounter::RemoteBytes) = 900;
  const prof::Attribution a = prof::attribute(s);
  EXPECT_EQ(a.verdict, prof::Verdict::RemoteTrafficBound);
  EXPECT_DOUBLE_EQ(a.remote_frac, 0.9);
}

TEST(ProfVerdict, DeepestLevelMissesDominate) {
  prof::SpanRecord s = tile_span(1000, 0);
  s.counters.at(trace::SpanCounter::LocalBytes) = 900;
  s.counters.at(trace::SpanCounter::RemoteBytes) = 100;
  s.counters.at(trace::SpanCounter::L1Hits) = 50;
  s.counters.at(trace::SpanCounter::L1Misses) = 50;
  s.counters.at(trace::SpanCounter::L2Hits) = 10;
  s.counters.at(trace::SpanCounter::L2Misses) = 40;
  const prof::Attribution a = prof::attribute(s);
  EXPECT_EQ(a.verdict, prof::Verdict::CacheMissBound);
  EXPECT_DOUBLE_EQ(a.miss_rate, 0.8);  // L2 is the deepest active level
}

TEST(ProfVerdict, OtherwiseComputeBound) {
  prof::SpanRecord s = tile_span(1000, 100);
  s.counters.at(trace::SpanCounter::LocalBytes) = 900;
  s.counters.at(trace::SpanCounter::RemoteBytes) = 100;
  s.counters.at(trace::SpanCounter::L1Hits) = 95;
  s.counters.at(trace::SpanCounter::L1Misses) = 5;
  const prof::Attribution a = prof::attribute(s);
  EXPECT_EQ(a.verdict, prof::Verdict::ComputeBound);
  EXPECT_DOUBLE_EQ(a.spin_frac, 0.1);
  EXPECT_DOUBLE_EQ(a.remote_frac, 0.1);
}

TEST(ProfVerdict, NamesAreStable) {
  EXPECT_STREQ(prof::verdict_name(prof::Verdict::ComputeBound),
               "compute-bound");
  EXPECT_STREQ(prof::verdict_name(prof::Verdict::RemoteTrafficBound),
               "remote-traffic-bound");
  EXPECT_STREQ(prof::verdict_name(prof::Verdict::CacheMissBound),
               "cache-miss-bound");
  EXPECT_STREQ(prof::verdict_name(prof::Verdict::SpinBound), "spin-bound");
}

TEST(ProfSummary, StragglersAreTopKSlowestInOrder) {
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  run_profiled("nuCORALS", sched::Schedule::Static, tr, sim);
  const prof::ProfSummary s = prof::summarize(tr, 8, /*top_k=*/5);
  ASSERT_TRUE(s.enabled);
  ASSERT_LE(s.stragglers.size(), 5u);
  ASSERT_FALSE(s.stragglers.empty());
  for (std::size_t i = 1; i < s.stragglers.size(); ++i)
    EXPECT_GE(s.stragglers[i - 1].span.dur_ns(),
              s.stragglers[i].span.dur_ns());
  for (const prof::Straggler& st : s.stragglers) {
    EXPECT_GT(st.dur_ms, 0.0);
    EXPECT_GT(st.mean_dur_ms, 0.0);
  }
}

TEST(ProfSummary, RooflineIsCappedAndAnnotated) {
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  run_profiled("nuCORALS", sched::Schedule::Static, tr, sim);
  const prof::ProfSummary s =
      prof::summarize(tr, 8, /*top_k=*/5, /*max_roofline=*/7);
  EXPECT_LE(s.roofline.size(), 7u);
  ASSERT_FALSE(s.roofline.empty());
  for (const prof::RooflinePoint& p : s.roofline) {
    EXPECT_GT(p.ai, 0.0);
    EXPECT_GT(p.gflops, 0.0);
    EXPECT_GE(p.tid, 0);
    EXPECT_LT(p.tid, kThreads);
  }
}

TEST(ProfSummary, DisabledWithoutASampler) {
  trace::Trace tr;
  const prof::ProfSummary empty = prof::summarize(tr, 8);
  EXPECT_FALSE(empty.enabled);
  EXPECT_TRUE(empty.stragglers.empty());

  // A traced-but-unsampled run also reports disabled: spans exist but no
  // counters were attached.
  trace::Trace unsampled;
  unsampled.begin_run(1);
  const prof::ProfSummary s = prof::summarize(unsampled, 8);
  EXPECT_FALSE(s.enabled);
}

TEST(ProfProgress, RenderLineReportsLayerRateLocalityAndCompletion) {
  std::ostringstream os;
  prof::ProgressMeter meter(60.0, os);
  meter.begin_run("nuCORALS t2", 2, 1000);
  meter.publish(0, 100, 800, 200);
  meter.publish(1, 150, 600, 400);
  meter.set_layer(3);
  const std::string line = meter.render_line();
  EXPECT_NE(line.find("progress [nuCORALS t2]"), std::string::npos) << line;
  EXPECT_NE(line.find("layer 3"), std::string::npos) << line;
  EXPECT_NE(line.find("M up/s"), std::string::npos) << line;
  // locality = 1400 local / 2000 owned, completion = 250 / 1000.
  EXPECT_NE(line.find("locality 70.0%"), std::string::npos) << line;
  EXPECT_NE(line.find("25.0% done"), std::string::npos) << line;
}

TEST(ProfProgress, LayerIndicatorIsMonotonic) {
  std::ostringstream os;
  prof::ProgressMeter meter(60.0, os);
  meter.begin_run("x", 1, 0);
  meter.set_layer(5);
  meter.set_layer(2);  // late arrival must not move the indicator back
  EXPECT_NE(meter.render_line().find("layer 5"), std::string::npos);
}

TEST(ProfProgress, FinalBeatReportsEvenOnShortRuns) {
  std::ostringstream os;
  prof::ProgressMeter meter(60.0, os);  // far longer than the test
  meter.begin_run("short", 1, 100);
  meter.publish(0, 100, 10, 0);
  meter.emit_final();  // the telemetry sampler drives this at end_run
  const std::string out = os.str();
  EXPECT_NE(out.find("(final)"), std::string::npos) << out;
  EXPECT_NE(out.find("100.0% done"), std::string::npos) << out;
}

TEST(ProfProgress, SlotReadersExposePublishedStateToTheSampler) {
  std::ostringstream os;
  prof::ProgressMeter meter(1.0, os);
  meter.begin_run("r", 2, 0);
  meter.publish(1, 42, 100, 50);
  meter.set_layer(7);
  EXPECT_EQ(meter.num_slots(), 2);
  std::uint64_t updates = 0, local = 0, remote = 0;
  meter.read_slot(1, updates, local, remote);
  EXPECT_EQ(updates, 42u);
  EXPECT_EQ(local, 100u);
  EXPECT_EQ(remote, 50u);
  meter.read_slot(0, updates, local, remote);
  EXPECT_EQ(updates, 0u);
  EXPECT_EQ(meter.layer(), 7);
  EXPECT_EQ(meter.label(), "r");
}

TEST(ProfProgress, RejectsNonPositiveIntervalsAndEmptyTeams) {
  std::ostringstream os;
  EXPECT_THROW(prof::ProgressMeter(0.0, os), Error);
  EXPECT_THROW(prof::ProgressMeter(-1.0, os), Error);
  prof::ProgressMeter meter(1.0, os);
  EXPECT_THROW(meter.begin_run("x", 0, 0), Error);
}

}  // namespace
}  // namespace nustencil
