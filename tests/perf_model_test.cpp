// Performance model: reference lines against the paper's caption numbers,
// and the qualitative shapes the model must reproduce (NUMA cliff,
// domain-size crossover, banded drop).
#include <gtest/gtest.h>

#include <memory>

#include "perf/microbench.hpp"
#include "perf/model.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::perf {
namespace {

const topology::MachineSpec kXeon = topology::xeonX7550();
const topology::MachineSpec kOpteron = topology::opteron8222();

double gflops(double gupdates_per_core, const core::StencilSpec& st, int cores) {
  return gupdates_per_core * st.flops() * cores;
}

TEST(ReferenceLines, MatchPaperCaptions) {
  const auto c7 = core::StencilSpec::paper_3d7p();
  // Fig. 5/7/9 captions at 32 Xeon cores.
  EXPECT_NEAR(gflops(peak_dp_line(kXeon, c7, 32), c7, 32), 202.5, 1.0);
  EXPECT_NEAR(gflops(ll1band0c_line(kXeon, c7, 32), c7, 32), 119.6, 1.0);
  EXPECT_NEAR(gflops(sysbandic_line(kXeon, c7, 32), c7, 32), 51.2, 1.0);
  EXPECT_NEAR(gflops(sysband0c_line(kXeon, c7, 32), c7, 32), 12.7, 0.5);
  // Fig. 4/6/8 captions at 16 Opteron cores.  PeakDP and LL1Band0C follow
  // Table I exactly; the paper's Opteron SysBand captions sit ~35% above
  // what Table I's 11.9 GB/s implies (the Xeon captions are exact), so
  // those are asserted loosely — see EXPERIMENTS.md.
  EXPECT_NEAR(gflops(peak_dp_line(kOpteron, c7, 16), c7, 16), 95.3, 0.5);
  EXPECT_NEAR(gflops(ll1band0c_line(kOpteron, c7, 16), c7, 16), 37.7, 0.5);
  EXPECT_NEAR(gflops(sysbandic_line(kOpteron, c7, 16), c7, 16), 13.2, 4.0);
  EXPECT_NEAR(gflops(sysband0c_line(kOpteron, c7, 16), c7, 16), 3.3, 1.0);
}

TEST(ReferenceLines, BandedCaptions) {
  const auto b7 = core::StencilSpec::banded_star(3, 1);
  // Fig. 11/13/15: LL1Band0C 63.8, SysBandIC 11.3, SysBand0C 6.8 (Xeon).
  EXPECT_NEAR(gflops(ll1band0c_line(kXeon, b7, 32), b7, 32), 63.8, 1.0);
  EXPECT_NEAR(gflops(sysbandic_line(kXeon, b7, 32), b7, 32), 11.3, 0.5);
  EXPECT_NEAR(gflops(sysband0c_line(kXeon, b7, 32), b7, 32), 6.8, 0.5);
  // Fig. 10/12/14 (Opteron): 20.1 / 2.9 / 1.8 (SysBand loose, see above).
  EXPECT_NEAR(gflops(ll1band0c_line(kOpteron, b7, 16), b7, 16), 20.1, 0.5);
  EXPECT_NEAR(gflops(sysbandic_line(kOpteron, b7, 16), b7, 16), 2.9, 1.0);
  EXPECT_NEAR(gflops(sysband0c_line(kOpteron, b7, 16), b7, 16), 1.8, 0.6);
}

/// Fixture-owned stencils so each ModelInput points at stable storage.
struct InputFactory {
  std::vector<std::unique_ptr<core::StencilSpec>> stencils;

  ModelInput make(const topology::MachineSpec& m, const core::StencilSpec& st,
                  int threads) {
    stencils.push_back(std::make_unique<core::StencilSpec>(st));
    ModelInput in;
    in.machine = &m;
    in.stencil = stencils.back().get();
    in.threads = threads;
    in.traffic.mem_doubles_per_update = 0.1;
    in.traffic.llc_doubles_per_update = 8.0;
    return in;
  }
};

TEST(Model, NumaCliff) {
  // Identical traffic, but serial first touch (all demand on node 0, low
  // locality) must collapse per-core performance beyond one socket.
  InputFactory f;
  const auto st = core::StencilSpec::paper_3d7p();
  auto aware = f.make(kXeon, st, 32);
  aware.traffic.mem_doubles_per_update = 2.0;
  aware.locality = 0.95;
  aware.node_demand = {1, 1, 1, 1};
  auto blind = aware;
  blind.locality = 0.25;
  blind.node_demand = {4, 0, 0, 0};
  const double a = model_scheme(aware).gupdates_per_core;
  const double b = model_scheme(blind).gupdates_per_core;
  EXPECT_GT(a, 1.8 * b) << "NUMA-blind placement must cost at least ~2x";
}

TEST(Model, SameWithinOneSocket) {
  // Within one socket there is no remote traffic; placement is irrelevant.
  InputFactory f;
  const auto st = core::StencilSpec::paper_3d7p();
  auto aware = f.make(kXeon, st, 8);
  aware.locality = 1.0;
  aware.node_demand = {1, 0, 0, 0};
  auto blind = aware;  // same node demand: everything on socket 0
  EXPECT_DOUBLE_EQ(model_scheme(aware).gupdates_per_core,
                   model_scheme(blind).gupdates_per_core);
}

TEST(Model, BindingResourceReported) {
  InputFactory f;
  const auto st = core::StencilSpec::paper_3d7p();
  auto in = f.make(kXeon, st, 32);
  in.traffic.mem_doubles_per_update = 50.0;  // clearly memory bound
  const auto out = model_scheme(in);
  EXPECT_GT(out.t_mem, out.t_llc);
  EXPECT_GT(out.t_mem, out.t_compute);
}

TEST(Model, MoreThreadsNeverSlowerAggregate) {
  InputFactory f;
  const auto st = core::StencilSpec::paper_3d7p();
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    auto in = f.make(kXeon, st, n);
    in.traffic.mem_doubles_per_update = 2.0;
    const double total = model_scheme(in).gupdates_per_core * n;
    EXPECT_GE(total, prev * 0.999);
    prev = total;
  }
}

TEST(SchemeEstimates, BandedCostsMoreMemoryTraffic) {
  for (const auto& name : schemes::scheme_names()) {
    const auto scheme = schemes::make_scheme(name);
    const auto c = scheme->estimate_traffic(kXeon, Coord{200, 200, 200},
                                            core::StencilSpec::paper_3d7p(), 16, 100);
    const auto b = scheme->estimate_traffic(kXeon, Coord{200, 200, 200},
                                            core::StencilSpec::banded_star(3, 1), 16, 100);
    EXPECT_GT(b.mem_doubles_per_update, c.mem_doubles_per_update) << name;
    EXPECT_GT(b.llc_doubles_per_update, c.llc_doubles_per_update) << name;
  }
}

TEST(SchemeEstimates, TemporalBlockingBeatsNaive) {
  // On big domains the temporal blockers must move far less memory per
  // update than the naive sweep — that is the whole point of the paper.
  const auto st = core::StencilSpec::paper_3d7p();
  const auto naive = schemes::make_scheme("NaiveSSE")
                         ->estimate_traffic(kXeon, Coord{500, 500, 500}, st, 32, 100);
  for (const std::string name : {"nuCATS", "nuCORALS", "CATS", "CORALS"}) {
    const auto e = schemes::make_scheme(name)->estimate_traffic(
        kXeon, Coord{500, 500, 500}, st, 32, 100);
    EXPECT_LT(e.mem_doubles_per_update, naive.mem_doubles_per_update / 2.0) << name;
  }
}

TEST(SchemeEstimates, CoralsCrossoverWithDomainSize) {
  // Figs. 7 vs 9: nuCORALS wins on 160^3, nuCATS on 500^3 (Xeon).  The
  // crossover comes from the traffic estimates.
  const auto st = core::StencilSpec::paper_3d7p();
  const auto corals_small = schemes::make_scheme("nuCORALS")->estimate_traffic(
      kXeon, Coord{160, 160, 160}, st, 32, 100);
  const auto corals_big = schemes::make_scheme("nuCORALS")->estimate_traffic(
      kXeon, Coord{500, 500, 500}, st, 32, 100);
  EXPECT_LT(corals_small.llc_doubles_per_update, corals_big.llc_doubles_per_update);
}

TEST(Microbench, PeakAndBandwidthArePositive) {
  EXPECT_GT(measure_peak_dp_gflops(0.02), 0.1);
  EXPECT_GT(measure_copy_bandwidth_gbs(1 << 20, 0.02), 0.1);
}

TEST(Microbench, L1FasterThanMemory) {
  const double l1 = measure_copy_bandwidth_gbs(16 << 10, 0.05);
  const double mem = measure_copy_bandwidth_gbs(64 << 20, 0.05);
  EXPECT_GT(l1, mem * 0.8) << "cache copies should not be slower than DRAM";
}

}  // namespace
}  // namespace nustencil::perf
