// Machine descriptions and bandwidth curves (Table I / Fig. 3).
#include <gtest/gtest.h>

#include "topology/machine.hpp"

namespace nustencil::topology {
namespace {

TEST(MachineSpec, OpteronMatchesTableI) {
  const MachineSpec m = opteron8222();
  EXPECT_EQ(m.sockets, 8);
  EXPECT_EQ(m.cores_per_socket, 2);
  EXPECT_EQ(m.cores(), 16);
  EXPECT_EQ(m.numa_nodes(), 8);
  EXPECT_EQ(m.caches.size(), 2u);  // no L3
  EXPECT_DOUBLE_EQ(m.sys_bw_gbs, 11.9);
  EXPECT_DOUBLE_EQ(m.peak_dp_gflops, 95.3);
  // Derived ratios the paper reports in Table I.
  EXPECT_NEAR(m.last_level_cache().aggregate_bw_gbs / m.sys_bw_gbs, 15.6, 0.1);
  EXPECT_NEAR(m.peak_dp_gflops / (m.sys_bw_gbs / 8.0), 64.1, 0.1);
}

TEST(MachineSpec, XeonMatchesTableI) {
  const MachineSpec m = xeonX7550();
  EXPECT_EQ(m.cores(), 32);
  EXPECT_EQ(m.numa_nodes(), 4);
  EXPECT_EQ(m.caches.size(), 3u);
  EXPECT_NEAR(m.last_level_cache().aggregate_bw_gbs / m.sys_bw_gbs, 9.3, 0.1);
  EXPECT_NEAR(m.peak_dp_gflops / (m.sys_bw_gbs / 8.0), 25.7, 0.1);
  EXPECT_NEAR(m.peak_dp_gflops / (m.last_level_cache().aggregate_bw_gbs / 8.0), 2.8,
              0.1);
}

TEST(BandwidthCurve, AnchorsAndInterpolation) {
  const MachineSpec m = opteron8222();
  EXPECT_DOUBLE_EQ(m.sys_bw_scaling.factor(1), 1.0);
  EXPECT_DOUBLE_EQ(m.sys_bw_scaling.factor(2), 1.6);   // Section IV-C
  EXPECT_DOUBLE_EQ(m.sys_bw_scaling.factor(16), 6.5);  // overall 6.5x
  // Monotone between anchors.
  double prev = 0.0;
  for (int n = 1; n <= 16; ++n) {
    const double f = m.sys_bw_scaling.factor(n);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(BandwidthCurve, XeonTotalSpeedup) {
  const MachineSpec m = xeonX7550();
  EXPECT_NEAR(m.sys_bw_scaling.factor(32), 13.7, 0.01);  // Section IV-C
  EXPECT_NEAR(m.sys_bw_at(32), 63.0, 0.01);
  // 16 cores (2 sockets): 38.7 GB/s per Section IV-D.
  EXPECT_NEAR(m.sys_bw_at(16), 38.7, 0.5);
}

TEST(BandwidthCurve, SaturatesBeyondLastAnchor) {
  BandwidthCurve c;
  c.anchors = {{1, 1.0}, {4, 2.0}};
  EXPECT_DOUBLE_EQ(c.factor(8), 2.0);
}

TEST(MachineSpec, ActiveSocketsFillFirst) {
  const MachineSpec m = xeonX7550();
  EXPECT_EQ(m.active_sockets(1), 1);
  EXPECT_EQ(m.active_sockets(8), 1);
  EXPECT_EQ(m.active_sockets(9), 2);
  EXPECT_EQ(m.active_sockets(32), 4);
  EXPECT_EQ(m.node_of_core(0), 0);
  EXPECT_EQ(m.node_of_core(7), 0);
  EXPECT_EQ(m.node_of_core(8), 1);
  EXPECT_EQ(m.node_of_core(31), 3);
}

TEST(MachineSpec, SysBandwidthPerCoreDegrades) {
  const MachineSpec m = xeonX7550();
  // The per-core system bandwidth must fall with the core count (Fig. 3)
  // while the per-core cache bandwidth is constant.
  EXPECT_GT(m.sys_bw_at(1) / 1, m.sys_bw_at(32) / 32);
  EXPECT_DOUBLE_EQ(m.cache_bw_per_core(2), m.caches[2].aggregate_bw_gbs / 32.0);
}

TEST(MachineSpec, HostIsUsable) {
  const MachineSpec m = host();
  EXPECT_GE(m.cores(), 1);
  EXPECT_FALSE(m.caches.empty());
  EXPECT_GT(m.sys_bw_at(1), 0.0);
}

TEST(MachineSpec, BadThreadCountsThrow) {
  const MachineSpec m = xeonX7550();
  EXPECT_THROW(m.active_sockets(0), Error);
  EXPECT_THROW(m.active_sockets(33), Error);
  EXPECT_THROW(m.sys_bw_scaling.factor(0), Error);
}

}  // namespace
}  // namespace nustencil::topology
