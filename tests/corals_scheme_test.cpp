// CORALS / nuCORALS correctness: the bidirectional tiling engine against
// the reference, with dependency-order validation, multiple layers, high
// orders, banded coefficients, 1D/2D/3D domains and awkward (prime) sizes.
#include <gtest/gtest.h>

#include "schemes/corals.hpp"
#include "schemes/nucorals.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

using schemes::CoralsScheme;
using schemes::NuCoralsScheme;
using schemes::RunConfig;

RunConfig corals_config(int threads, long steps, bool check = true) {
  RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.check_dependencies = check;
  return cfg;
}

TEST(NuCoralsScheme, SingleThread3D) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 12, 14}, core::StencilSpec::paper_3d7p(),
                                 corals_config(1, 5));
}

TEST(NuCoralsScheme, TwoThreads3D) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 14, 12}, core::StencilSpec::paper_3d7p(),
                                 corals_config(2, 6));
}

TEST(NuCoralsScheme, FourThreads3D) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{18, 16, 14}, core::StencilSpec::paper_3d7p(),
                                 corals_config(4, 7));
}

TEST(NuCoralsScheme, EightThreads3D) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 16, 16}, core::StencilSpec::paper_3d7p(),
                                 corals_config(8, 5));
}

TEST(NuCoralsScheme, PrimeSizes) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{17, 13, 11}, core::StencilSpec::paper_3d7p(),
                                 corals_config(3, 5));
}

TEST(NuCoralsScheme, MultipleLayers) {
  NuCoralsScheme scheme;
  // tau = b/(2s) is small here, so many layers with barriers in between.
  test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(),
                                 corals_config(4, 17));
}

TEST(NuCoralsScheme, HighOrder2) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{20, 18, 16}, core::StencilSpec::stable_star(3, 2),
                                 corals_config(2, 4));
}

TEST(NuCoralsScheme, HighOrder3) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{24, 22, 20}, core::StencilSpec::stable_star(3, 3),
                                 corals_config(2, 3));
}

TEST(NuCoralsScheme, Banded) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{14, 12, 10}, core::StencilSpec::banded_star(3, 1),
                                 corals_config(2, 5));
}

TEST(NuCoralsScheme, TwoDimensional) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{24, 18}, core::StencilSpec::stable_star(2, 1),
                                 corals_config(3, 6));
}

TEST(NuCoralsScheme, OneDimensional) {
  NuCoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{64}, core::StencilSpec::stable_star(1, 1),
                                 corals_config(4, 6));
}

TEST(NuCoralsScheme, TauOverride) {
  for (long tau : {1L, 2L, 5L}) {
    NuCoralsScheme scheme(tau);
    test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(),
                                   corals_config(2, 6));
  }
}

TEST(NuCoralsScheme, InstrumentedLocalityMatchesPaperTarget) {
  NuCoralsScheme scheme;
  RunConfig cfg = corals_config(8, 12, /*check=*/false);
  cfg.instrument = true;
  core::Problem problem(Coord{48, 48, 48}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  // Section III-C: with tau = b/2, about 75% of the processed data is
  // thread-local. Page granularity and halos blur this; expect >= 60%.
  EXPECT_GT(result.traffic.locality(), 0.60);
  EXPECT_GT(result.details.at("tau"), 0.0);
}

TEST(CoralsScheme, MatchesReference) {
  CoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 14, 12}, core::StencilSpec::paper_3d7p(),
                                 corals_config(4, 6));
}

TEST(CoralsScheme, MatchesReferenceManyThreads) {
  CoralsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 16, 16}, core::StencilSpec::paper_3d7p(),
                                 corals_config(8, 5));
}

TEST(CoralsScheme, LocalityIsPoorAcrossSockets) {
  CoralsScheme scheme;
  RunConfig cfg = corals_config(16, 8, /*check=*/false);
  cfg.instrument = true;
  core::Problem problem(Coord{32, 32, 32}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  // Serial init: all pages on node 0, threads on 2 sockets.
  EXPECT_LT(result.traffic.locality(), 0.7);
}

TEST(NuCoralsScheme, UpdateCountExact) {
  NuCoralsScheme scheme;
  core::Problem problem(Coord{12, 12, 12}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, corals_config(4, 9));
  EXPECT_EQ(result.updates, 12 * 12 * 12 * 9);
}

}  // namespace
}  // namespace nustencil
