// Unit tests for the common module: coords, arithmetic helpers, aligned
// buffers, statistics and tables.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/aligned.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"

namespace nustencil {
namespace {

TEST(Coord, ConstructionAndAccess) {
  Coord c{3, 4, 5};
  EXPECT_EQ(c.rank(), 3);
  EXPECT_EQ(c[0], 3);
  EXPECT_EQ(c[2], 5);
  EXPECT_EQ(c.product(), 60);
  EXPECT_EQ(c.min(), 3);
}

TEST(Coord, Filled) {
  Coord c = Coord::filled(2, 7);
  EXPECT_EQ(c.rank(), 2);
  EXPECT_EQ(c[0], 7);
  EXPECT_EQ(c[1], 7);
}

TEST(Coord, Equality) {
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
  EXPECT_NE((Coord{1, 2}), (Coord{1, 3}));
  EXPECT_NE((Coord{1, 2}), (Coord{1, 2, 3}));
}

TEST(Coord, TooManyDimensionsThrows) {
  EXPECT_THROW((Coord{1, 2, 3, 4, 5}), Error);
}

TEST(Coord, Strides) {
  const Coord s = strides_for(Coord{4, 5, 6});
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s[1], 4);
  EXPECT_EQ(s[2], 20);
  EXPECT_EQ(linear_index(Coord{1, 2, 3}, s), 1 + 8 + 60);
}

TEST(Math, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(8, 4), 8);
}

TEST(Math, PositiveModulo) {
  EXPECT_EQ(pmod(7, 5), 2);
  EXPECT_EQ(pmod(-1, 5), 4);
  EXPECT_EQ(pmod(-5, 5), 0);
  EXPECT_EQ(pmod(0, 5), 0);
}

TEST(AlignedBuffer, AlignmentAndZeroFill) {
  AlignedBuffer buf(1000);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kPageBytes, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i)
    EXPECT_EQ(std::to_integer<int>(buf.data()[i]), 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(64);
  std::byte* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
}

TEST(AlignedBuffer, BadAlignmentThrows) {
  EXPECT_THROW(AlignedBuffer(64, 48), Error);
}

TEST(RunningStats, Moments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Table, PrintsHeaderRowsAndNaN) {
  Table t("demo");
  t.set_header({"cores", "a", "b"});
  t.add_row("1", {1.5, std::nan("")});
  t.add_row("2", {2.5, 3.5});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("cores"), std::string::npos);
  EXPECT_NE(out.find("1.5000"), std::string::npos);
  EXPECT_NE(out.find('-'), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t("csv");
  t.set_header({"k", "v"});
  t.add_row("x", {1.0});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("k,v"), std::string::npos);
  EXPECT_NE(os.str().find("x,1.0000"), std::string::npos);
}

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    NUSTENCIL_CHECK(1 == 2, "custom message");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom message"), std::string::npos);
  }
}

}  // namespace
}  // namespace nustencil
