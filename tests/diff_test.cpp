// Differential-analysis tests: the rep-statistics layer (zero-width
// intervals on identical reps), the report diff engine (config deltas,
// significant vs noise classification, attribution verdicts,
// forward-tolerance to older schemas) and the trajectory gate (pass on
// an unchanged tree, fail on a synthetic 20% throughput regression).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "metrics/diff.hpp"
#include "metrics/json.hpp"
#include "metrics/stats.hpp"
#include "metrics/trajectory.hpp"

namespace nustencil::metrics {
namespace {

// ---------------------------------------------------------------------------
// Stats

TEST(Stats, IdenticalRepsCollapseToZeroWidthInterval) {
  const RepSummary s = summarize_reps({1.5, 1.5, 1.5, 1.5});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.median, 1.5);
  EXPECT_DOUBLE_EQ(s.mad, 0.0);
  EXPECT_DOUBLE_EQ(s.ci_lo, 1.5);
  EXPECT_DOUBLE_EQ(s.ci_hi, 1.5);
  EXPECT_DOUBLE_EQ(s.min, 1.5);
  EXPECT_DOUBLE_EQ(s.max, 1.5);
}

TEST(Stats, SummaryIsRobustToOneOutlier) {
  // Median/MAD shrug off the 100x outlier a mean/stddev summary would
  // be dominated by.
  const RepSummary s = summarize_reps({1.0, 1.1, 0.9, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(s.median, 1.0);
  EXPECT_NEAR(s.mad, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_LT(s.ci_hi, 2.0);  // the interval stays near the bulk
}

TEST(Stats, IntervalOverlap) {
  RepSummary a, b;
  a.ci_lo = 1.0; a.ci_hi = 2.0;
  b.ci_lo = 1.5; b.ci_hi = 3.0;
  EXPECT_TRUE(intervals_overlap(a, b));
  EXPECT_TRUE(intervals_overlap(b, a));
  b.ci_lo = 2.5;
  EXPECT_FALSE(intervals_overlap(a, b));
  EXPECT_FALSE(intervals_overlap(b, a));
  // Two zero-width intervals at the same point overlap.
  a.ci_lo = a.ci_hi = b.ci_lo = b.ci_hi = 1.5;
  EXPECT_TRUE(intervals_overlap(a, b));
}

TEST(Stats, EmptyInputIsAllZero) {
  const RepSummary s = summarize_reps({});
  EXPECT_EQ(s.n, 0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
}

TEST(Stats, SectionFindByName) {
  StatsSection sec;
  sec.reps = 3;
  sec.add("result/seconds", {1.0, 2.0, 3.0});
  ASSERT_NE(sec.find("result/seconds"), nullptr);
  EXPECT_DOUBLE_EQ(sec.find("result/seconds")->median, 2.0);
  EXPECT_EQ(sec.find("result/gupdates_per_s"), nullptr);
}

// ---------------------------------------------------------------------------
// Report diff

/// A hand-built minimal v4 run report.  `mutate` edits the default field
/// values before serialisation so each test states only what differs.
struct FakeReport {
  std::string scheme = "nuCORALS";
  std::string kernel_variant = "avx2+rot/7pt/const";
  std::string schedule = "static";
  double seconds = 1.0;
  double gup = 0.5;
  long updates = 1000;
  long local_bytes = 900;
  long remote_bytes = 100;
  double spin_s = 0.01;
  double barrier_s = 0.02;
  double compute_s = 0.9;
  double imbalance = 1.05;
  long l3_hits = 800;
  long l3_misses = 200;
  std::vector<std::vector<long>> matrix = {{900, 50}, {50, 0}};
  // Optional stats section: median/ci per noisy metric name.
  bool with_stats = false;
  double seconds_ci_lo = 0.0, seconds_ci_hi = 0.0, seconds_median = 0.0;

  std::string json() const {
    std::ostringstream os;
    const double locality =
        static_cast<double>(local_bytes) / (local_bytes + remote_bytes);
    os << "{\"schema_version\":4,\"generator\":\"test\","
       << "\"provenance\":{\"git_sha\":\"abc1234\",\"compiler\":\"g++\"},"
       << "\"config\":{\"scheme\":\"" << scheme << "\",\"threads\":2,"
       << "\"kernel_variant\":\"" << kernel_variant << "\",\"schedule\":\""
       << schedule << "\"},"
       << "\"result\":{\"seconds\":" << seconds << ",\"gupdates_per_s\":"
       << gup << ",\"updates\":" << updates << "},"
       << "\"traffic\":{\"local_bytes\":" << local_bytes
       << ",\"remote_bytes\":" << remote_bytes << ",\"unowned_bytes\":0,"
       << "\"locality\":" << locality << ",\"node_matrix\":[";
    for (std::size_t r = 0; r < matrix.size(); ++r) {
      os << (r ? "," : "") << "[";
      for (std::size_t c = 0; c < matrix[r].size(); ++c)
        os << (c ? "," : "") << matrix[r][c];
      os << "]";
    }
    os << "]},"
       << "\"phases\":{\"enabled\":true,\"init_s\":0.001,"
       << "\"compute_s\":" << compute_s << ",\"barrier_wait_s\":" << barrier_s
       << ",\"spinflag_wait_s\":" << spin_s << ",\"imbalance\":" << imbalance
       << "},"
       << "\"cache\":{\"levels\":[{\"level\":3,\"hits\":" << l3_hits
       << ",\"misses\":" << l3_misses << ",\"hit_rate\":"
       << static_cast<double>(l3_hits) / (l3_hits + l3_misses) << "}]}";
    if (with_stats) {
      os << ",\"stats\":{\"reps\":3,\"metrics\":{\"result/seconds\":"
         << "{\"n\":3,\"median\":" << seconds_median << ",\"mad\":0.0,"
         << "\"ci_lo\":" << seconds_ci_lo << ",\"ci_hi\":" << seconds_ci_hi
         << ",\"min\":" << seconds_ci_lo << ",\"max\":" << seconds_ci_hi
         << "}}}";
    }
    os << "}";
    return os.str();
  }

  JsonValue parse() const { return parse_json(json()); }
};

const MetricDelta* find_metric(const ReportDiff& diff,
                               const std::string& name) {
  for (const MetricDelta& m : diff.metrics)
    if (m.name == name) return &m;
  return nullptr;
}

TEST(Diff, IdenticalReportsHaveZeroSignificantDeltas) {
  const FakeReport r;
  const ReportDiff diff = diff_reports(r.parse(), r.parse());
  EXPECT_EQ(diff.significant(), 0u);
  EXPECT_EQ(diff.count(DeltaClass::Noise), 0u);
  EXPECT_TRUE(diff.config.empty());
  EXPECT_GT(diff.count(DeltaClass::Equal), 5u);
}

TEST(Diff, ConfigDeltaIsStructural) {
  FakeReport a, b;
  b.scheme = "nuCATS";
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  ASSERT_EQ(diff.config.size(), 1u);
  EXPECT_EQ(diff.config[0].key, "config/scheme");
  EXPECT_EQ(diff.config[0].a, "nuCORALS");
  EXPECT_EQ(diff.config[0].b, "nuCATS");
}

TEST(Diff, ExactMetricsFlagAnyChange) {
  FakeReport a, b;
  b.updates = a.updates + 1;  // one cell update of drift is significant
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/updates");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::Exact);
  EXPECT_EQ(m->cls, DeltaClass::Significant);
}

TEST(Diff, NoisyMetricsAbsorbSmallDriftWithoutStats) {
  FakeReport a, b;
  b.seconds = a.seconds * 1.05;  // 5% < the 10% single-rep fallback
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->cls, DeltaClass::Noise);
  EXPECT_FALSE(m->used_stats);

  b.seconds = a.seconds * 1.5;  // 50% is significant even without stats
  const ReportDiff big = diff_reports(a.parse(), b.parse());
  EXPECT_EQ(find_metric(big, "result/seconds")->cls, DeltaClass::Significant);
}

TEST(Diff, StatsTurnDisjointIntervalsSignificant) {
  // 6% apart — noise under the single-rep fallback, but both runs carry
  // tight (zero-width) intervals, so the diff knows it is real.
  FakeReport a, b;
  a.with_stats = b.with_stats = true;
  a.seconds = a.seconds_median = a.seconds_ci_lo = a.seconds_ci_hi = 1.0;
  b.seconds = b.seconds_median = b.seconds_ci_lo = b.seconds_ci_hi = 1.06;
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->used_stats);
  EXPECT_EQ(m->cls, DeltaClass::Significant);
}

TEST(Diff, StatsTurnOverlappingIntervalsIntoNoise) {
  // 15% apart — significant under the single-rep fallback, but the wide
  // overlapping intervals say the runs cannot be told apart.
  FakeReport a, b;
  a.with_stats = b.with_stats = true;
  a.seconds = a.seconds_median = 1.0;
  a.seconds_ci_lo = 0.7; a.seconds_ci_hi = 1.3;
  b.seconds = b.seconds_median = 1.15;
  b.seconds_ci_lo = 0.85; b.seconds_ci_hi = 1.45;
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/seconds");
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->used_stats);
  EXPECT_EQ(m->cls, DeltaClass::Noise);
}

TEST(Diff, KernelChangeVerdictNamesBothVariants) {
  FakeReport a, b;
  b.kernel_variant = "scalar/7pt/const";
  b.gup = a.gup * 0.5;  // the throughput delta needs an explanation
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/gupdates_per_s");
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->has_verdict);
  EXPECT_EQ(m->verdict.cause, prof::DeltaCause::KernelChange);
  // Evidence carries both variant names — numeric/structural, not prose.
  EXPECT_NE(m->verdict.evidence.find("avx2+rot/7pt/const"), std::string::npos);
  EXPECT_NE(m->verdict.evidence.find("scalar/7pt/const"), std::string::npos);
}

TEST(Diff, LocalityShiftVerdictCarriesNumericEvidence) {
  FakeReport a, b;
  // Same config, but B pushed half its local traffic remote.
  b.local_bytes = 500;
  b.remote_bytes = 500;
  b.gup = a.gup * 0.6;
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/gupdates_per_s");
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->has_verdict);
  EXPECT_EQ(m->verdict.cause, prof::DeltaCause::LocalityShift);
  // The evidence quotes the measured locality on both sides.
  EXPECT_NE(m->verdict.evidence.find("0.9"), std::string::npos);
  EXPECT_NE(m->verdict.evidence.find("0.5"), std::string::npos);
}

TEST(Diff, SpinShiftVerdictOnSyncRegression) {
  FakeReport a, b;
  b.spin_s = 0.4;  // spin fraction jumps from ~1% to ~30%
  b.seconds = 1.3;
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "result/seconds");
  ASSERT_NE(m, nullptr);
  ASSERT_TRUE(m->has_verdict);
  EXPECT_EQ(m->verdict.cause, prof::DeltaCause::SpinShift);
}

TEST(Diff, TrafficMetricsAttributeToLocality) {
  FakeReport a, b;
  b.local_bytes = 500;
  b.remote_bytes = 500;
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  const MetricDelta* m = find_metric(diff, "traffic/remote_bytes");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->cls, DeltaClass::Significant);
  ASSERT_TRUE(m->has_verdict);
  EXPECT_EQ(m->verdict.cause, prof::DeltaCause::LocalityShift);
}

TEST(Diff, NodeMatrixDeltaIsSigned) {
  FakeReport a, b;
  b.matrix = {{900, 50}, {150, 0}};  // +100 bytes in cell (1,0)
  const ReportDiff diff = diff_reports(a.parse(), b.parse());
  ASSERT_EQ(diff.nodes, 2);
  ASSERT_EQ(diff.matrix_delta_mib.size(), 4u);
  EXPECT_DOUBLE_EQ(diff.matrix_delta_mib[0], 0.0);
  EXPECT_NEAR(diff.matrix_delta_mib[2], 100.0 / (1024.0 * 1024.0), 1e-15);
}

TEST(Diff, OlderSchemaIsToleratedNotSignificant) {
  // A v1-era report with only result+config: the missing sections must
  // read as schema gaps (noise), never as regressions.
  const JsonValue old = parse_json(
      "{\"schema_version\":1,\"config\":{\"scheme\":\"nuCORALS\","
      "\"threads\":2},\"result\":{\"seconds\":1.0,\"gupdates_per_s\":0.5,"
      "\"updates\":1000}}");
  const FakeReport modern;
  const ReportDiff diff = diff_reports(old, modern.parse());
  EXPECT_EQ(diff.schema_a, 1);
  EXPECT_EQ(diff.schema_b, 4);
  for (const MetricDelta& m : diff.metrics) {
    if (m.a_present && m.b_present) continue;
    EXPECT_EQ(m.cls, DeltaClass::Noise) << m.name << " flagged a schema gap";
  }
  // The shared metrics still compare normally.
  const MetricDelta* upd = find_metric(diff, "result/updates");
  ASSERT_NE(upd, nullptr);
  EXPECT_EQ(upd->cls, DeltaClass::Equal);
}

TEST(Diff, NonReportDocumentThrows) {
  EXPECT_THROW(diff_reports(parse_json("{\"foo\":1}"),
                            FakeReport().parse()),
               Error);
}

TEST(Diff, ConsoleFormatCarriesVerdictsAndSummary) {
  FakeReport a, b;
  b.kernel_variant = "scalar/7pt/const";
  b.gup = a.gup * 0.5;
  const std::string out = format_diff_console(diff_reports(a.parse(), b.parse()));
  EXPECT_NE(out.find("CONFIG config/kernel_variant"), std::string::npos);
  EXPECT_NE(out.find("SIGNIFICANT"), std::string::npos);
  EXPECT_NE(out.find("kernel-change"), std::string::npos);
  EXPECT_NE(out.find("SUMMARY:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trajectory gate

TrajectoryEntry entry_with(double gup, double locality, double seconds) {
  TrajectoryEntry e;
  e.git_sha = "cafe123";
  e.compiler = "g++ 12";
  e.build_type = "Release";
  e.machine_conf = "xeon-x7550";
  e.metrics = {{"regress/nuCORALS_e40/model_gup_core", gup},
               {"regress/nuCORALS_e40/locality", locality},
               {"regress/nuCORALS_e40/seconds", seconds}};
  return e;
}

TrajectoryDb history_of(int n, double gup) {
  TrajectoryDb db;
  for (int i = 0; i < n; ++i)
    db.entries.push_back(entry_with(gup, 0.875, 0.004));
  return db;
}

TEST(Trajectory, UnchangedTreePassesTheGate) {
  const TrajectoryDb db = history_of(5, 0.2269);
  const GateResult r = gate_candidate(db, entry_with(0.2269, 0.875, 0.004));
  EXPECT_TRUE(r.pass);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_FALSE(r.findings.empty());
}

TEST(Trajectory, TwentyPercentThroughputRegressionFailsTheGate) {
  const TrajectoryDb db = history_of(5, 0.2269);
  const GateResult r =
      gate_candidate(db, entry_with(0.2269 * 0.8, 0.875, 0.004));
  EXPECT_FALSE(r.pass);
  EXPECT_EQ(r.regressions, 1);
  const std::string out = format_gate_console(r);
  EXPECT_NE(out.find("REGRESSION"), std::string::npos);
  EXPECT_NE(out.find("model_gup_core"), std::string::npos);
  EXPECT_NE(out.find("FAIL"), std::string::npos);
}

TEST(Trajectory, ImprovementNeverFails) {
  const TrajectoryDb db = history_of(5, 0.2269);
  const GateResult r =
      gate_candidate(db, entry_with(0.2269 * 1.5, 0.875, 0.004));
  EXPECT_TRUE(r.pass);
}

TEST(Trajectory, WallClockIsInformationalOnly) {
  // A 10x wall-clock blowup alone (loaded CI machine) must not fail.
  const TrajectoryDb db = history_of(5, 0.2269);
  const GateResult r = gate_candidate(db, entry_with(0.2269, 0.875, 0.04));
  EXPECT_TRUE(r.pass);
  bool saw_seconds = false;
  for (const GateFinding& f : r.findings)
    if (f.metric == "regress/nuCORALS_e40/seconds") {
      saw_seconds = true;
      EXPECT_FALSE(f.gated);
    }
  EXPECT_TRUE(saw_seconds);
}

TEST(Trajectory, NoisyWindowWidensTheBand) {
  // The window itself oscillates (MAD = 0.01, so 3 robust sigmas ~= 0.044
  // around the 0.20 median); a 12% dip is inside that noise band even
  // though it exceeds the 5% min-effect floor, so the gate must not fire.
  TrajectoryDb db;
  const double vals[] = {0.18, 0.20, 0.22, 0.19, 0.21};
  for (double v : vals) db.entries.push_back(entry_with(v, 0.875, 0.004));
  const GateResult r = gate_candidate(db, entry_with(0.20 * 0.88, 0.875, 0.004));
  EXPECT_TRUE(r.pass);
}

TEST(Trajectory, EmptyHistoryPassesTrivially) {
  const GateResult r =
      gate_candidate(TrajectoryDb{}, entry_with(0.2269, 0.875, 0.004));
  EXPECT_TRUE(r.pass);
  EXPECT_TRUE(r.findings.empty());
}

TEST(Trajectory, SaveLoadRoundTrip) {
  TrajectoryDb db = history_of(2, 0.2269);
  const std::string path = "diff_test_trajectory_tmp.json";
  save_trajectory(db, path);
  const TrajectoryDb back = load_trajectory(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].git_sha, "cafe123");
  EXPECT_EQ(back.entries[0].machine_conf, "xeon-x7550");
  ASSERT_NE(back.entries[1].find("regress/nuCORALS_e40/model_gup_core"),
            nullptr);
  EXPECT_DOUBLE_EQ(*back.entries[1].find("regress/nuCORALS_e40/model_gup_core"),
                   0.2269);
}

TEST(Trajectory, MissingFileIsEmptyHistory) {
  EXPECT_TRUE(load_trajectory("does_not_exist_anywhere.json").entries.empty());
}

TEST(Trajectory, EntryFromRegressReadsProvenance) {
  const JsonValue doc = parse_json(
      "{\"schema_version\":2,\"machine\":\"xeon-x7550\","
      "\"provenance\":{\"git_sha\":\"abc\",\"compiler\":\"g++\","
      "\"build_type\":\"Release\",\"machine_conf\":\"xeon-x7550\"},"
      "\"cases\":[{\"scheme\":\"nuCORALS\",\"edge\":40,\"updates\":1,"
      "\"local_bytes\":1,\"remote_bytes\":0,\"unowned_bytes\":0,"
      "\"locality\":1.0,\"model_gupdates_per_core\":0.3,\"seconds\":0.1}]}");
  const TrajectoryEntry e = entry_from_regress(doc);
  EXPECT_EQ(e.git_sha, "abc");
  EXPECT_EQ(e.machine_conf, "xeon-x7550");
  ASSERT_NE(e.find("regress/nuCORALS_e40/model_gup_core"), nullptr);
  EXPECT_DOUBLE_EQ(*e.find("regress/nuCORALS_e40/model_gup_core"), 0.3);
}

TEST(Trajectory, TelemetryOverheadFoldsButIsInformationalOnly) {
  TrajectoryEntry e;
  merge_telemetry_overhead(
      e, parse_json("{\"overhead_pct\":1.75,\"seconds_off\":0.4}"));
  ASSERT_NE(e.find("telemetry/overhead_pct"), nullptr);
  EXPECT_DOUBLE_EQ(*e.find("telemetry/overhead_pct"), 1.75);
  EXPECT_FALSE(metric_is_gated("telemetry/overhead_pct"));
  // A degraded document with no headline number folds nothing.
  TrajectoryEntry none;
  merge_telemetry_overhead(none, parse_json("{\"seconds_off\":0.4}"));
  EXPECT_TRUE(none.metrics.empty());

  // A wall-clock overhead blowup on a loaded runner must not fail the
  // gate even when the history says it is usually near zero.
  TrajectoryDb db = history_of(5, 0.2269);
  for (TrajectoryEntry& h : db.entries)
    h.metrics.emplace_back("telemetry/overhead_pct", 0.5);
  TrajectoryEntry candidate = entry_with(0.2269, 0.875, 0.004);
  candidate.metrics.emplace_back("telemetry/overhead_pct", 25.0);
  const GateResult r = gate_candidate(db, candidate);
  EXPECT_TRUE(r.pass);
  bool saw = false;
  for (const GateFinding& f : r.findings)
    if (f.metric == "telemetry/overhead_pct") {
      saw = true;
      EXPECT_FALSE(f.gated);
    }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace nustencil::metrics
