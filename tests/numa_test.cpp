// First-touch page table, virtual topology and traffic accounting.
#include <gtest/gtest.h>

#include "numa/page_table.hpp"
#include "numa/traffic.hpp"
#include "topology/machine.hpp"

namespace nustencil::numa {
namespace {

TEST(PageTable, FirstTouchAssignsOnlyOnce) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096 * 4);
  EXPECT_EQ(pt.owner(r, 0), kUnowned);
  pt.first_touch(r, 0, 4096, 1);
  EXPECT_EQ(pt.owner(r, 0), 1);
  pt.first_touch(r, 0, 4096, 2);  // second touch must not steal the page
  EXPECT_EQ(pt.owner(r, 100), 1);
}

TEST(PageTable, RangeSpanningPages) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096 * 4);
  pt.first_touch(r, 100, 4096 * 2 + 50, 3);  // pages 0, 1, 2
  EXPECT_EQ(pt.owner(r, 0), 3);
  EXPECT_EQ(pt.owner(r, 4096), 3);
  EXPECT_EQ(pt.owner(r, 4096 * 2), 3);
  EXPECT_EQ(pt.owner(r, 4096 * 3), kUnowned);
}

TEST(PageTable, PlaceOverridesOwnership) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);
  pt.place(r, 0, 4096, 5);
  EXPECT_EQ(pt.owner(r, 0), 5);
}

TEST(PageTable, CountBytesByNodeSplitsAtPageBoundary) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);
  pt.first_touch(r, 4096, 8192, 1);
  std::vector<std::uint64_t> by_node;
  pt.count_bytes_by_node(r, 2048, 6144, 2, by_node);
  EXPECT_EQ(by_node[0], 2048u);  // [2048, 4096) on node 0
  EXPECT_EQ(by_node[1], 2048u);  // [4096, 6144) on node 1
  EXPECT_EQ(by_node[2], 0u);     // no unowned bytes
}

TEST(PageTable, UnownedBytesCounted) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096);
  std::vector<std::uint64_t> by_node;
  pt.count_bytes_by_node(r, 0, 4096, 2, by_node);
  EXPECT_EQ(by_node[2], 4096u);
}

TEST(PageTable, OwnedFraction) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096 * 4);
  pt.first_touch(r, 0, 4096 * 3, 2);
  EXPECT_DOUBLE_EQ(pt.owned_fraction(r, 2), 0.75);
  EXPECT_DOUBLE_EQ(pt.owned_fraction(r, 0), 0.0);
}

TEST(PageTable, SmallPagesForScaledDomains) {
  PageTable pt(256);
  const RegionId r = pt.register_region("a", 1024);
  pt.first_touch(r, 0, 256, 0);
  pt.first_touch(r, 256, 1024, 1);
  EXPECT_EQ(pt.owner(r, 255), 0);
  EXPECT_EQ(pt.owner(r, 256), 1);
}

TEST(PageTable, OutOfRangeThrows) {
  PageTable pt(4096);
  const RegionId r = pt.register_region("a", 4096);
  EXPECT_THROW(pt.first_touch(r, 0, 8192, 0), Error);
  EXPECT_THROW(pt.owner(r, 4096), Error);
  EXPECT_THROW(pt.owner(r + 1, 0), Error);
}

TEST(VirtualTopology, FillSocketFirst) {
  const auto machine = topology::xeonX7550();
  VirtualTopology topo(machine);
  EXPECT_EQ(topo.node_of_thread(0), 0);
  EXPECT_EQ(topo.node_of_thread(7), 0);
  EXPECT_EQ(topo.node_of_thread(8), 1);
  EXPECT_EQ(topo.num_nodes(), 4);
}

TEST(TrafficRecorder, ClassifiesLocalAndRemote) {
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("a", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);      // node 0
  pt.first_touch(r, 4096, 8192, 1);   // node 1

  TrafficRecorder rec(pt, topo, 16);
  rec.account(/*tid=*/0, r, 0, 8192);    // thread 0 on node 0
  rec.account(/*tid=*/8, r, 0, 4096);    // thread 8 on node 1
  const TrafficStats stats = rec.collect();
  EXPECT_EQ(stats.local_bytes, 4096u);              // thread 0's first page
  EXPECT_EQ(stats.remote_bytes, 4096u + 4096u);     // rest is cross-node
  EXPECT_EQ(stats.bytes_from_node[0], 4096u * 2);   // node 0 served 2 pages
  EXPECT_EQ(stats.bytes_from_node[1], 4096u);
  EXPECT_NEAR(stats.locality(), 1.0 / 3.0, 1e-12);
}

TEST(TrafficRecorder, PageStraddlingRangeAttributedExactlyOnce) {
  // A range spanning two differently-owned pages must attribute each
  // page's bytes to its owner exactly once: the per-class totals have to
  // cover the range with no byte double-counted or dropped.
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("straddle", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);
  pt.first_touch(r, 4096, 8192, 1);

  TrafficRecorder rec(pt, topo, 1);
  rec.account(/*tid=*/0, r, 1000, 7000);  // 3096 B on page 0, 2904 B on page 1
  const TrafficStats stats = rec.collect();
  EXPECT_EQ(stats.local_bytes, 3096u);
  EXPECT_EQ(stats.remote_bytes, 2904u);
  EXPECT_EQ(stats.unowned_bytes, 0u);
  EXPECT_EQ(stats.total_bytes(), 6000u);
  EXPECT_EQ(stats.bytes_from_node[0] + stats.bytes_from_node[1], 6000u);
}

TEST(TrafficRecorder, StraddleIntoUnownedCountedOncePerPage) {
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("half", 4096 * 2);
  pt.first_touch(r, 0, 4096, 1);  // second page stays untouched

  TrafficRecorder rec(pt, topo, 1);
  rec.account(/*tid=*/0, r, 4000, 5000);
  const TrafficStats stats = rec.collect();
  EXPECT_EQ(stats.remote_bytes, 96u);    // tail of the node-1 page
  EXPECT_EQ(stats.unowned_bytes, 904u);  // head of the untouched page
  EXPECT_EQ(stats.total_bytes(), 1000u);
}

TEST(TrafficRecorder, NodeMatrixSplitsConsumerByOwner) {
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("m", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);
  pt.first_touch(r, 4096, 8192, 1);

  TrafficRecorder rec(pt, topo, 16);
  rec.account(/*tid=*/0, r, 0, 8192);  // consumer node 0: one page each owner
  rec.account(/*tid=*/8, r, 0, 4096);  // consumer node 1 <- owner node 0
  const TrafficStats stats = rec.collect();
  ASSERT_EQ(stats.node_matrix.size(),
            static_cast<std::size_t>(stats.num_nodes() * stats.num_nodes()));
  EXPECT_EQ(stats.matrix_at(0, 0), 4096u);
  EXPECT_EQ(stats.matrix_at(0, 1), 4096u);
  EXPECT_EQ(stats.matrix_at(1, 0), 4096u);
  EXPECT_EQ(stats.matrix_at(1, 1), 0u);
  // The diagonal is the local traffic, the rest remote.
  EXPECT_EQ(stats.matrix_at(0, 0) + stats.matrix_at(1, 1), stats.local_bytes);
  EXPECT_EQ(stats.matrix_at(0, 1) + stats.matrix_at(1, 0), stats.remote_bytes);
}

TEST(TrafficRecorder, LocalitySeriesSamplesPerWindow) {
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("series", 4096 * 2);
  pt.first_touch(r, 0, 4096, 0);
  pt.first_touch(r, 4096, 8192, 1);

  TrafficRecorder rec(pt, topo, 1);
  rec.set_sample_window(100);
  rec.account(0, r, 0, 4096);      // local window
  rec.tick_updates(0, 100);        // closes window 1
  rec.account(0, r, 4096, 8192);   // remote window
  rec.tick_updates(0, 60);
  rec.tick_updates(0, 40);         // crosses: closes window 2
  rec.account(0, r, 0, 1024);      // partial trailing window
  rec.tick_updates(0, 10);         // in progress, not yet a full window

  const TrafficStats stats = rec.collect();
  ASSERT_EQ(stats.samples.size(), 3u);
  EXPECT_EQ(stats.samples[0].updates, 100u);
  EXPECT_DOUBLE_EQ(stats.samples[0].locality(), 1.0);
  EXPECT_EQ(stats.samples[1].updates, 200u);
  EXPECT_DOUBLE_EQ(stats.samples[1].locality(), 0.0);
  EXPECT_EQ(stats.samples[2].local_bytes, 1024u);
  // The windows partition the aggregate traffic.
  std::uint64_t local = 0, remote = 0;
  for (const LocalitySample& s : stats.samples) {
    local += s.local_bytes;
    remote += s.remote_bytes;
  }
  EXPECT_EQ(local, stats.local_bytes);
  EXPECT_EQ(remote, stats.remote_bytes);
}

TEST(TrafficRecorder, SamplingDisabledKeepsSeriesEmpty) {
  const auto machine = topology::xeonX7550();
  PageTable pt(4096);
  VirtualTopology topo(machine);
  const RegionId r = pt.register_region("off", 4096);
  pt.first_touch(r, 0, 4096, 0);
  TrafficRecorder rec(pt, topo, 1);
  rec.account(0, r, 0, 4096);
  rec.tick_updates(0, 1000);
  EXPECT_TRUE(rec.collect().samples.empty());
}

TEST(TrafficStats, MergeAndEmptyLocality) {
  TrafficStats a, b;
  a.local_bytes = 10;
  b.remote_bytes = 30;
  b.bytes_from_node = {5, 25};
  a.merge(b);
  EXPECT_EQ(a.local_bytes, 10u);
  EXPECT_EQ(a.remote_bytes, 30u);
  EXPECT_EQ(a.bytes_from_node[1], 25u);
  EXPECT_DOUBLE_EQ(TrafficStats{}.locality(), 1.0);
}

}  // namespace
}  // namespace nustencil::numa
