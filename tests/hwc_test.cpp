// Hardware counter subsystem, driven entirely by the programmable fake
// backend so every path — multiplex scaling, counter wrap-around, the
// span-delta exactness invariant, degraded-mode report contents and the
// off-mode zero-syscall guarantee — is green without perf permissions.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "cachesim/shared.hpp"
#include "common/error.hpp"
#include "hwc/events.hpp"
#include "hwc/fake_backend.hpp"
#include "hwc/group.hpp"
#include "hwc/validate.hpp"
#include "metrics/json.hpp"
#include "metrics/run_report.hpp"
#include "schemes/scheme.hpp"
#include "topology/machine.hpp"
#include "trace/trace.hpp"

namespace nustencil {
namespace {

using hwc::Event;
using hwc::FakeBackend;
using hwc::Mode;
using hwc::ThreadSet;

constexpr int kThreads = 2;
constexpr Index kEdge = 20;
constexpr long kSteps = 4;

const topology::MachineSpec& machine() {
  static const topology::MachineSpec m = topology::xeonX7550();
  return m;
}

// ---------------------------------------------------------------------------
// Event and mode parsing

TEST(HwcEvents, ParseIsCaseInsensitiveAndAcceptsUnderscores) {
  EXPECT_EQ(hwc::parse_event("cycles"), Event::Cycles);
  EXPECT_EQ(hwc::parse_event("CYCLES"), Event::Cycles);
  EXPECT_EQ(hwc::parse_event("Cache-Misses"), Event::CacheMisses);
  EXPECT_EQ(hwc::parse_event("cache_misses"), Event::CacheMisses);
  EXPECT_EQ(hwc::parse_event("task_clock"), Event::TaskClock);
}

TEST(HwcEvents, ParseRejectsUnknownNamingAllValidValues) {
  try {
    hwc::parse_event("nope");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'nope'"), std::string::npos);
    // The message must enumerate the full vocabulary.
    for (int i = 0; i < hwc::kNumEvents; ++i)
      EXPECT_NE(what.find(hwc::event_name(static_cast<Event>(i))),
                std::string::npos)
          << hwc::event_name(static_cast<Event>(i));
  }
}

TEST(HwcEvents, ParseListRejectsDuplicatesAndEmptyItems) {
  const std::vector<Event> two = hwc::parse_event_list("cycles,page-faults");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], Event::Cycles);
  EXPECT_EQ(two[1], Event::PageFaults);
  EXPECT_THROW(hwc::parse_event_list("cycles,cycles"), Error);
  EXPECT_THROW(hwc::parse_event_list("cycles,,instructions"), Error);
}

TEST(HwcEvents, ParseModeIsCaseInsensitive) {
  EXPECT_EQ(hwc::parse_mode("auto"), Mode::Auto);
  EXPECT_EQ(hwc::parse_mode("AUTO"), Mode::Auto);
  EXPECT_EQ(hwc::parse_mode("On"), Mode::On);
  EXPECT_EQ(hwc::parse_mode("OFF"), Mode::Off);
  try {
    hwc::parse_mode("bogus");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'bogus'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("auto, on or off"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// ThreadSet against the fake backend

TEST(HwcThreadSet, OffModeMakesZeroSyscalls) {
  FakeBackend fake;
  ThreadSet set(fake, Mode::Off, {}, kThreads);
  EXPECT_FALSE(set.active());
  set.attach(0);
  set.detach(0);
  trace::CounterSet out;
  set.sample(0, out);
  EXPECT_EQ(fake.total_opens(), 0);
  EXPECT_EQ(fake.total_reads(), 0);
  const hwc::HwRunStats s = set.stats();
  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(s.status, "off");
}

TEST(HwcThreadSet, ProbeFixesAvailabilityAndClosesItsFds) {
  FakeBackend fake;
  ThreadSet set(fake, Mode::Auto, {}, kThreads);
  EXPECT_TRUE(set.active());
  EXPECT_EQ(set.probe().status, "ok");
  // The probe opens and closes one fd per event; nothing stays open
  // until a worker attaches.
  EXPECT_EQ(fake.open_fds(), 0);
}

TEST(HwcThreadSet, MissingOptionalEventDoesNotDegrade) {
  FakeBackend fake;
  fake.set_unavailable(Event::StalledCycles, ENOENT);
  ThreadSet set(fake, Mode::Auto, {}, kThreads);
  EXPECT_EQ(set.probe().status, "ok");
  EXPECT_FALSE(set.probe().available(Event::StalledCycles));
  EXPECT_TRUE(set.probe().available(Event::Cycles));
}

TEST(HwcThreadSet, FullyDegradedHostReportsWhy) {
  FakeBackend fake;
  fake.fail_all(EACCES);
  fake.set_paranoid(3);
  ThreadSet set(fake, Mode::Auto, {}, kThreads);
  EXPECT_FALSE(set.active());
  EXPECT_EQ(set.probe().status, "degraded");
  EXPECT_NE(set.probe().reason.find("perf_event_paranoid=3"),
            std::string::npos);
  // attach/sample on a dead set must be safe no-ops.
  set.attach(0);
  trace::CounterSet out;
  set.sample(0, out);
  set.detach(0);
}

TEST(HwcThreadSet, SampleWritesCumulativeCountsIntoHwSlots) {
  FakeBackend fake;
  fake.set_increment(Event::Cycles, 7);
  ThreadSet set(fake, Mode::Auto, {Event::Cycles}, 1);
  set.attach(0);
  trace::CounterSet a, b;
  set.sample(0, a);
  set.sample(0, b);
  const auto slot = hwc::event_slot(Event::Cycles);
  EXPECT_EQ(b.at(slot) - a.at(slot), 7u);
  set.detach(0);
}

TEST(HwcThreadSet, MultiplexScalingIsReportedNotApplied) {
  FakeBackend fake;
  // time_enabled advances 3x faster than time_running: the PMU ran this
  // group a third of the time.
  fake.set_time_advance(3000, 1000);
  fake.set_increment(Event::Cycles, 11);
  ThreadSet set(fake, Mode::Auto, {Event::Cycles}, 1);
  set.attach(0);
  trace::CounterSet s;
  set.sample(0, s);
  const hwc::HwRunStats stats = set.stats();
  ASSERT_EQ(stats.threads.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.threads[0].scaling, 3.0);
  EXPECT_TRUE(stats.threads[0].multiplexed);
  EXPECT_DOUBLE_EQ(stats.max_scaling(), 3.0);
  // Raw counts: one sample read + one stats read = two increments, NOT
  // multiplied by the scaling factor.
  EXPECT_EQ(stats.threads[0].total[static_cast<std::size_t>(Event::Cycles)],
            22u);
}

TEST(HwcThreadSet, CounterWrapAroundDeltasStayExact) {
  FakeBackend fake;
  fake.set_increment(Event::Cycles, 40);
  fake.set_initial_value(Event::Cycles,
                         std::numeric_limits<std::uint64_t>::max() - 60);
  ThreadSet set(fake, Mode::Auto, {Event::Cycles}, 1);
  set.attach(0);
  trace::CounterSet s0, s1, s2;
  const auto slot = hwc::event_slot(Event::Cycles);
  set.sample(0, s0);  // max - 20
  set.sample(0, s1);  // wraps to 19
  set.sample(0, s2);  // 59
  // Unsigned subtraction makes each span delta exact across the wrap.
  EXPECT_EQ(s1.at(slot) - s0.at(slot), 40u);
  EXPECT_EQ(s2.at(slot) - s1.at(slot), 40u);
  set.detach(0);
}

// ---------------------------------------------------------------------------
// Whole-run integration: a real scheme with the fake backend injected

schemes::RunResult run_with_fake(FakeBackend& fake, trace::Trace* tr,
                                 cachesim::SharedHierarchy* sim,
                                 Mode mode = Mode::Auto) {
  const auto scheme = schemes::make_scheme("nuCATS");
  schemes::RunConfig cfg;
  cfg.num_threads = kThreads;
  cfg.timesteps = kSteps;
  cfg.instrument = true;
  cfg.machine = &machine();
  cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  cfg.trace = tr;
  cfg.cache_sim = sim;
  cfg.profile_spans = tr != nullptr;
  cfg.hw_mode = mode;
  cfg.hw_backend = &fake;
  core::Problem problem(Coord{kEdge, kEdge, kEdge},
                        core::StencilSpec::paper_3d7p());
  return scheme->run(problem, cfg);
}

TEST(HwcRun, OffModeTouchesTheBackendNotAtAll) {
  FakeBackend fake;
  trace::Trace tr;
  run_with_fake(fake, &tr, nullptr, Mode::Off);
  EXPECT_EQ(fake.total_opens(), 0);
  EXPECT_EQ(fake.total_reads(), 0);
}

TEST(HwcRun, SpanDeltasSumExactlyToAttributedTotals) {
  FakeBackend fake;
  trace::Trace tr;
  const schemes::RunResult run = run_with_fake(fake, &tr, nullptr);
  ASSERT_EQ(run.hw.status, "ok");
  ASSERT_EQ(run.hw.backend, "fake");
  ASSERT_EQ(run.hw.threads.size(), static_cast<std::size_t>(kThreads));

  // Sum of every hw span delta held in the event rings, per thread.
  for (int tid = 0; tid < kThreads; ++tid) {
    trace::CounterSet ring_sum;
    for (const trace::Event& e : tr.thread(tid)->events())
      if (e.has_counters) ring_sum.accumulate(e.counters);
    for (const Event ev : hwc::default_events()) {
      const std::uint64_t attributed =
          run.hw.threads[static_cast<std::size_t>(tid)]
              .attributed[static_cast<std::size_t>(ev)];
      EXPECT_EQ(ring_sum.at(hwc::event_slot(ev)), attributed)
          << "tid " << tid << " event " << hwc::event_name(ev);
    }
  }
  // Run-level attributed is the thread sum, and never exceeds the
  // whole-region total (barriers and scheduling are measured but belong
  // to no compute span).
  for (const Event ev : hwc::default_events()) {
    const auto i = static_cast<std::size_t>(ev);
    std::uint64_t thread_sum = 0;
    for (const auto& t : run.hw.threads) thread_sum += t.attributed[i];
    EXPECT_EQ(run.hw.attributed[i], thread_sum);
    EXPECT_LE(run.hw.attributed[i], run.hw.totals[i])
        << hwc::event_name(ev);
    EXPECT_GT(run.hw.totals[i], 0u) << hwc::event_name(ev);
  }
}

TEST(HwcRun, DegradedRunSucceedsAndTheReportSaysWhy) {
  FakeBackend fake;
  fake.fail_all(EACCES);
  fake.set_paranoid(2);
  trace::Trace tr;
  const schemes::RunResult run = run_with_fake(fake, &tr, nullptr);
  EXPECT_GT(run.updates, 0);  // the run itself is unharmed
  EXPECT_EQ(run.hw.status, "degraded");
  EXPECT_NE(run.hw.reason.find("perf_event_paranoid=2"), std::string::npos);
  EXPECT_FALSE(run.hw.any_available());

  // The serialised report carries the same story.
  metrics::RunReport rep;
  rep.scheme = "nuCATS";
  rep.shape = "20x20x20";
  rep.machine = &machine();
  rep.hw = &run.hw;
  const metrics::JsonValue doc =
      metrics::parse_json(metrics::run_report_json(rep));
  const metrics::JsonValue& hw = doc.at("hw");
  EXPECT_TRUE(hw.at("enabled").boolean_value());
  EXPECT_EQ(hw.at("status").str(), "degraded");
  EXPECT_NE(hw.at("reason").str().find("perf_event_paranoid"),
            std::string::npos);
  EXPECT_EQ(hw.at("paranoid").num(), 2);
  for (const metrics::JsonValue& e : hw.at("events").array) {
    EXPECT_FALSE(e.at("available").boolean_value());
    EXPECT_FALSE(e.at("reason").str().empty());
  }
}

TEST(HwcRun, OkRunReportCarriesRawTotalsAndScaling) {
  FakeBackend fake;
  fake.set_time_advance(2000, 1000);  // scaling 2.0 on every thread
  trace::Trace tr;
  const schemes::RunResult run = run_with_fake(fake, &tr, nullptr);
  metrics::RunReport rep;
  rep.scheme = "nuCATS";
  rep.shape = "20x20x20";
  rep.machine = &machine();
  rep.hw = &run.hw;
  const metrics::JsonValue doc =
      metrics::parse_json(metrics::run_report_json(rep));
  const metrics::JsonValue& hw = doc.at("hw");
  EXPECT_EQ(hw.at("status").str(), "ok");
  for (const metrics::JsonValue& t : hw.at("threads").array) {
    EXPECT_DOUBLE_EQ(t.at("scaling").num(), 2.0);
    EXPECT_TRUE(t.at("multiplexed").boolean_value());
  }
  // Totals are per-event maps keyed by name, raw counts only.
  for (const Event ev : hwc::default_events())
    EXPECT_EQ(hw.at("totals").at(hwc::event_name(ev)).num(),
              static_cast<double>(
                  run.hw.totals[static_cast<std::size_t>(ev)]));
}

// ---------------------------------------------------------------------------
// Simulated-vs-measured validation

TEST(HwcValidate, SpearmanHandlesPerfectInverseAndTies) {
  EXPECT_DOUBLE_EQ(hwc::spearman({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(hwc::spearman({1, 2, 3, 4}, {40, 30, 20, 10}), -1.0);
  EXPECT_DOUBLE_EQ(hwc::spearman({1, 2}, {5, 5}), 0.0);  // constant side
  EXPECT_DOUBLE_EQ(hwc::spearman({1}, {2}), 0.0);        // too few points
  // Ties get average ranks; a monotone relation survives them.
  EXPECT_GT(hwc::spearman({1, 1, 2, 3}, {5, 6, 7, 8}), 0.8);
}

TEST(HwcRun, ValidationCorrelatesSimulatedAndMeasuredMisses) {
  FakeBackend fake;
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  const schemes::RunResult run = run_with_fake(fake, &tr, &sim);
  ASSERT_EQ(run.hw.status, "ok");
  ASSERT_TRUE(run.hw.validation.has_value());
  EXPECT_EQ(run.hw.validation->status, "ok");
  EXPECT_GE(run.hw.validation->n, 2);
  EXPECT_GE(run.hw.validation->spearman, -1.0);
  EXPECT_LE(run.hw.validation->spearman, 1.0);
  EXPECT_FALSE(run.hw.validation->points.empty());
  EXPECT_LE(run.hw.validation->points.size(), 256u);
}

TEST(HwcRun, ValidationAbsentWhenCacheMissesUnavailable) {
  FakeBackend fake;
  fake.set_unavailable(Event::CacheMisses, ENOENT);
  trace::Trace tr;
  cachesim::SharedHierarchy sim(machine(), kThreads);
  const schemes::RunResult run = run_with_fake(fake, &tr, &sim);
  EXPECT_EQ(run.hw.status, "degraded");
  EXPECT_FALSE(run.hw.validation.has_value());
}

}  // namespace
}  // namespace nustencil
