// Cross-validation of the analytic traffic model against the exact
// set-associative cache simulator, by replaying real stencil access
// patterns through the simulated hierarchy on domains small enough to
// simulate per-line.
#include <gtest/gtest.h>

#include "cachesim/hierarchy.hpp"
#include "core/stencil.hpp"
#include "schemes/naive.hpp"
#include "topology/machine.hpp"

namespace nustencil {
namespace {

/// Replays `steps` naive Jacobi sweeps over an edge^3 domain through the
/// cache hierarchy of `machine` on one core and returns the measured
/// memory traffic in doubles per update.
double simulate_naive_sweep(const topology::MachineSpec& machine, Index edge,
                            long steps) {
  cachesim::Hierarchy h(machine, 1);
  const core::StencilSpec st = core::StencilSpec::paper_3d7p();
  const Index volume = edge * edge * edge;
  const cachesim::Addr src_base = 0;
  const cachesim::Addr dst_base = static_cast<cachesim::Addr>(volume) * 8 * 2;

  for (long t = 0; t < steps; ++t) {
    const cachesim::Addr read_base = t % 2 == 0 ? src_base : dst_base;
    const cachesim::Addr write_base = t % 2 == 0 ? dst_base : src_base;
    for (Index z = 0; z < edge; ++z)
      for (Index y = 0; y < edge; ++y)
        for (Index x = 0; x < edge; ++x) {
          const Index i = x + edge * (y + edge * z);
          for (const auto& p : st.points()) {
            Index j = i;
            if (p.dim == 0) j = pmod(x + p.offset, edge) + edge * (y + edge * z);
            if (p.dim == 1) j = x + edge * (pmod(y + p.offset, edge) + edge * z);
            if (p.dim == 2) j = x + edge * (y + edge * pmod(z + p.offset, edge));
            h.access(0, read_base + static_cast<cachesim::Addr>(j) * 8, 8, false);
          }
          h.access(0, write_base + static_cast<cachesim::Addr>(i) * 8, 8, true);
        }
  }
  const auto traffic = h.traffic();
  return static_cast<double>(traffic.memory_bytes(h.line_bytes())) /
         (static_cast<double>(volume) * static_cast<double>(steps)) / 8.0;
}

TEST(ModelValidation, NaiveSweepRegimesMatchSimulator) {
  // Small domain (fits the Xeon L3): the simulator must measure traffic
  // near the ideal-caching bound of 2 doubles/update (1 read + 1 write of
  // compulsory+capacity traffic amortised over steps); the analytic naive
  // estimate must agree on the regime.
  const auto xeon = topology::xeonX7550();
  const double fits = simulate_naive_sweep(xeon, 24, 4);  // 2x 108 KiB
  EXPECT_LT(fits, 1.0) << "a cache-resident domain re-misses only at start";

  // Within one sweep, the moving-slice reuse keeps naive traffic near
  // 2 doubles/update even when the whole domain exceeds the LLC — the
  // simulator confirms what the analytic slice model assumes.
  const auto opteron = topology::opteron8222();
  const double slice_reuse = simulate_naive_sweep(opteron, 76, 2);
  EXPECT_GT(slice_reuse, 1.5);
  EXPECT_LT(slice_reuse, 3.0);

  // When even the 2s+2 moving slices exceed the LLC the sweep thrashes:
  // use a toy machine with a 16 KiB LLC (slices of a 48^3 domain need
  // ~74 KiB) and check that simulator and analytic estimate agree on the
  // streaming regime.
  topology::MachineSpec tiny = opteron;
  tiny.caches = {{"L1", 16 * 1024, 1, 64, 2, 100.0}};
  const double thrash = simulate_naive_sweep(tiny, 48, 1);
  EXPECT_GT(thrash, 4.0) << "slices cannot be held -> taps re-miss";

  schemes::NaiveScheme naive;
  const auto small = naive.estimate_traffic(xeon, Coord{24, 24, 24},
                                            core::StencilSpec::paper_3d7p(), 1, 4);
  const auto large = naive.estimate_traffic(tiny, Coord{48, 48, 48},
                                            core::StencilSpec::paper_3d7p(), 1, 1);
  EXPECT_LT(small.mem_doubles_per_update, 2.5);
  EXPECT_GT(large.mem_doubles_per_update, 4.0);
}

TEST(ModelValidation, SlicePlaneReuseVisibleInSimulator) {
  // Within one sweep each source plane is read for 3 consecutive z values;
  // when a plane fits the caches those re-reads hit, bounding traffic by
  // ~2-3 doubles/update even for domains larger than the LLC.
  const auto xeon = topology::xeonX7550();
  const double d = simulate_naive_sweep(xeon, 48, 1);  // 2x 884 KiB < L3
  EXPECT_LT(d, 3.0);
}

TEST(ModelValidation, BandedTrafficScalesWithStreams) {
  // The banded case streams 2x the reads; replaying only the value arrays
  // vs adding 7 band arrays must roughly double memory traffic on a
  // non-resident domain.  (Band arrays are read-only and stream once per
  // update each.)
  const auto opteron = topology::opteron8222();
  cachesim::Hierarchy h(opteron, 1);
  const Index edge = 48;
  const Index volume = edge * edge * edge;
  // One sweep streaming 9 distinct arrays per update: 7 coefficient
  // bands, 1 source element and 1 destination write (the off-centre value
  // taps mostly hit the same lines as the centre read and are omitted).
  for (Index i = 0; i < volume; ++i) {
    for (int a = 0; a < 7; ++a)
      h.access(0, static_cast<cachesim::Addr>(volume) * 8 * (2 + a) +
                      static_cast<cachesim::Addr>(i) * 8,
               8, false);
    h.access(0, static_cast<cachesim::Addr>(i) * 8, 8, false);
    h.access(0, static_cast<cachesim::Addr>(volume) * 8 + static_cast<cachesim::Addr>(i) * 8,
             8, true);
  }
  const double banded_doubles =
      static_cast<double>(h.traffic().memory_bytes(64)) / static_cast<double>(volume) / 8.0;
  // 9 streaming arrays at 1/8 line-amortised miss each => ~9/8... but each
  // array streams sequentially: every 8th access misses per array:
  // (7 bands + 1 src + 1 dst fill + 1 writeback) ~ 10/8 lines * 8 doubles.
  EXPECT_GT(banded_doubles, 5.0);
  EXPECT_LT(banded_doubles, 12.0);
}

}  // namespace
}  // namespace nustencil
