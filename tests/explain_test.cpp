// Plan descriptions (--explain) and pinning policies.
#include <gtest/gtest.h>

#include "numa/traffic.hpp"
#include "schemes/explain.hpp"
#include "schemes/scheme.hpp"

namespace nustencil {
namespace {

const topology::MachineSpec kXeon = topology::xeonX7550();

TEST(Explain, DescribesEveryScheme) {
  for (const std::string name :
       {"NaiveSSE", "CATS", "nuCATS", "CORALS", "nuCORALS", "Pochoir", "PLuTo"}) {
    const std::string text = schemes::describe_plan(
        name, Coord{160, 160, 160}, core::StencilSpec::paper_3d7p(), kXeon, 32, 100);
    EXPECT_NE(text.find(name), std::string::npos);
    EXPECT_GT(text.size(), 100u) << name;
  }
  EXPECT_THROW(schemes::describe_plan("nope", Coord{16, 16, 16},
                                      core::StencilSpec::paper_3d7p(), kXeon, 1, 1),
               Error);
}

TEST(Explain, NuCoralsPlanMatchesPaperFormulas) {
  const std::string text = schemes::describe_plan(
      "nuCORALS", Coord{500, 500, 500}, core::StencilSpec::paper_3d7p(), kXeon, 32, 100);
  EXPECT_NE(text.find("tau        : 31"), std::string::npos)
      << "b = 500/8 = 62, tau = b/2 = 31\n" << text;
  EXPECT_NE(text.find("[1,4,8]"), std::string::npos) << text;
  EXPECT_NE(text.find("~75%"), std::string::npos) << text;
}

TEST(Explain, NuCatsWavefrontFitsCache) {
  const std::string text = schemes::describe_plan(
      "nuCATS", Coord{160, 160, 160}, core::StencilSpec::paper_3d7p(), kXeon, 32, 100);
  EXPECT_NE(text.find("temporal chunk Tc       : 100"), std::string::npos) << text;
  EXPECT_NE(text.find("owner-matched"), std::string::npos);
  const std::string cats = schemes::describe_plan(
      "CATS", Coord{160, 160, 160}, core::StencilSpec::paper_3d7p(), kXeon, 32, 100);
  EXPECT_NE(cats.find("round-robin"), std::string::npos);
}

TEST(PinPolicy, CompactFillsSocketsFirst) {
  numa::VirtualTopology compact(kXeon, numa::PinPolicy::Compact);
  EXPECT_EQ(compact.node_of_thread(0), 0);
  EXPECT_EQ(compact.node_of_thread(7), 0);
  EXPECT_EQ(compact.node_of_thread(8), 1);
}

TEST(PinPolicy, ScatterRoundRobinsAcrossSockets) {
  numa::VirtualTopology scatter(kXeon, numa::PinPolicy::Scatter);
  EXPECT_EQ(scatter.node_of_thread(0), 0);
  EXPECT_EQ(scatter.node_of_thread(1), 1);
  EXPECT_EQ(scatter.node_of_thread(3), 3);
  EXPECT_EQ(scatter.node_of_thread(4), 0);
}

TEST(PinPolicy, ScatterEngagesAllNodesAtLowThreadCounts) {
  schemes::RunConfig cfg;
  cfg.num_threads = 4;
  cfg.timesteps = 4;
  cfg.instrument = true;
  cfg.pin_policy = numa::PinPolicy::Scatter;
  cfg.page_bytes = 256;  // avoid page-granularity artifacts on the tiny domain
  core::Problem problem(Coord{24, 24, 24}, core::StencilSpec::paper_3d7p());
  const auto run = schemes::make_scheme("NaiveSSE")->run(problem, cfg);
  int active = 0;
  for (auto b : run.traffic.bytes_from_node)
    if (b > 0) ++active;
  EXPECT_EQ(active, 4) << "scatter must put demand on every Xeon node";
}

}  // namespace
}  // namespace nustencil
