// Seeded randomised sweep: random shapes, orders, thread counts, step
// counts and schemes, every run dependency-checked and compared against
// the reference.  Catches interaction bugs the hand-picked configurations
// miss; the seed is fixed so failures reproduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <random>

#include "schemes/naive.hpp"
#include "schemes/scheme.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

TEST(Fuzz, RandomConfigurationsMatchReference) {
  std::mt19937 rng(20120521);  // the paper's conference date
  const auto& names = schemes::scheme_names();

  for (int trial = 0; trial < 60; ++trial) {
    const std::string name = names[rng() % names.size()];
    const int order = name == "nuCORALS" || name == "NaiveSSE"
                          ? 1 + static_cast<int>(rng() % 3)
                          : 1 + static_cast<int>(rng() % 2);
    std::uniform_int_distribution<Index> extent(4 * order + 1, 26);
    Coord shape{extent(rng), extent(rng), extent(rng)};
    schemes::RunConfig cfg;
    cfg.num_threads = 1 + static_cast<int>(rng() % 6);
    cfg.timesteps = 1 + static_cast<long>(rng() % 9);
    cfg.check_dependencies = true;
    cfg.seed = static_cast<unsigned>(rng());
    if (name == "CATS" || name == "nuCATS")
      cfg.boundary[2] = core::BoundaryKind::Dirichlet;
    if (name == "PLuTo" || name == "CORALS" || name == "nuCORALS") {
      // Respect the documented preconditions: decomposed tiles must be at
      // least 2s wide (conservatively assume one dimension takes all the
      // cuts).
      const Index min_decomposed = std::min(shape[1], shape[2]);
      cfg.num_threads = std::max(
          1, std::min<int>(cfg.num_threads,
                           static_cast<int>(min_decomposed / (2 * order))));
    }

    const bool banded = order == 1 && rng() % 4 == 0;
    const core::StencilSpec st = banded ? core::StencilSpec::banded_star(3, order)
                                        : core::StencilSpec::stable_star(3, order);
    SCOPED_TRACE(name + " " + std::to_string(shape[0]) + "x" +
                 std::to_string(shape[1]) + "x" + std::to_string(shape[2]) + " s=" +
                 std::to_string(order) + " n=" + std::to_string(cfg.num_threads) +
                 " T=" + std::to_string(cfg.timesteps) +
                 (banded ? " banded" : "") + " trial=" + std::to_string(trial));
    const auto scheme = schemes::make_scheme(name);
    test::expect_matches_reference(*scheme, shape, st, cfg);
  }
}

TEST(Fuzz, RandomBoxSplitsEqualWholeSweep) {
  // Partition the domain into random disjoint boxes; updating them in any
  // order must equal the whole-domain sweep (Jacobi order-independence).
  std::mt19937 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Coord shape{12, 10, 8};
    core::Problem whole(shape, core::StencilSpec::paper_3d7p());
    core::Problem parts(shape, core::StencilSpec::paper_3d7p());
    whole.initialize();
    parts.initialize();
    core::Executor we(whole), pe(parts);
    core::Box domain;
    domain.lo = Coord{0, 0, 0};
    domain.hi = shape;
    we.update_box(domain, 0, 0);

    // Random y/z split points.
    const Index ysplit = 1 + static_cast<Index>(rng() % 9);
    const Index zsplit = 1 + static_cast<Index>(rng() % 7);
    std::vector<core::Box> boxes;
    for (const auto& [ylo, yhi] : {std::pair<Index, Index>{0, ysplit},
                                   std::pair<Index, Index>{ysplit, 10}})
      for (const auto& [zlo, zhi] : {std::pair<Index, Index>{0, zsplit},
                                     std::pair<Index, Index>{zsplit, 8}}) {
        core::Box b;
        b.lo = Coord{0, ylo, zlo};
        b.hi = Coord{12, yhi, zhi};
        boxes.push_back(b);
      }
    std::shuffle(boxes.begin(), boxes.end(), rng);
    for (const auto& b : boxes) pe.update_box(b, 0, 0);
    EXPECT_DOUBLE_EQ(core::max_rel_diff(whole.buffer(1), parts.buffer(1)), 0.0);
  }
}

TEST(Fuzz, RunSupportRejectsBadConfigs) {
  const auto scheme = schemes::make_scheme("NaiveSSE");
  core::Problem p(Coord{8, 8, 8}, core::StencilSpec::paper_3d7p());
  schemes::RunConfig cfg;
  cfg.num_threads = 0;
  EXPECT_THROW(scheme->run(p, cfg), Error);
  cfg.num_threads = 1;
  cfg.timesteps = 0;
  EXPECT_THROW(scheme->run(p, cfg), Error);
  cfg.timesteps = 1;
  cfg.instrument = true;  // 33 threads exceed the default Xeon topology
  cfg.num_threads = 33;
  EXPECT_THROW(scheme->run(p, cfg), Error);
}

TEST(Fuzz, MixedBoundariesPerDimension) {
  // Periodic x/y with Dirichlet z (the CATS configuration) on the naive
  // scheme, which supports any mix — cross-checked via the test helper.
  schemes::NaiveScheme direct;
  for (const auto bc : {core::BoundaryKind::Periodic, core::BoundaryKind::Dirichlet}) {
    schemes::RunConfig cfg;
    cfg.num_threads = 3;
    cfg.timesteps = 4;
    cfg.boundary[1] = bc;
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
    test::expect_matches_reference(direct, Coord{10, 9, 11},
                                   core::StencilSpec::paper_3d7p(), cfg);
  }
}

}  // namespace
}  // namespace nustencil
