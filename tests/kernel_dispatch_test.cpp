// Kernel engine: policy parsing, CPUID-driven selection, and the
// bit-exactness contract — every kernel variant the host supports
// (scalar/SSE2/AVX2, specialized and generic, constant and banded,
// orders 1-3) must produce bitwise-identical results to the scalar
// reference on randomized domains, including the periodic wrap columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/kernels.hpp"
#include "core/reference.hpp"

namespace nustencil::core {
namespace {

Box whole(const Coord& shape) {
  Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  return b;
}

/// Every policy that resolves to a distinct runnable variant on this host.
std::vector<KernelPolicy> host_policies() {
  std::vector<KernelPolicy> ps{KernelPolicy::Scalar};
  if (kernel_isa_supported(KernelIsa::SSE2)) ps.push_back(KernelPolicy::SSE2);
  if (kernel_isa_supported(KernelIsa::AVX2)) ps.push_back(KernelPolicy::AVX2);
  ps.push_back(KernelPolicy::GenericSimd);
  ps.push_back(KernelPolicy::Auto);
  return ps;
}

std::vector<double> run_with_policy(const Coord& shape, const StencilSpec& st,
                                    KernelPolicy policy, long steps,
                                    unsigned seed) {
  Problem p(shape, st);
  p.initialize(seed);
  Executor e(p, {}, policy);
  for (long t = 0; t < steps; ++t) e.update_box(whole(shape), t, 0);
  const double* d = p.buffer(steps).data();
  return std::vector<double>(d, d + p.volume());
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(KernelDispatch, PolicyParsingRoundTrips) {
  for (KernelPolicy p :
       {KernelPolicy::Auto, KernelPolicy::Scalar, KernelPolicy::SSE2,
        KernelPolicy::AVX2, KernelPolicy::FMA, KernelPolicy::GenericSimd})
    EXPECT_EQ(parse_kernel_policy(to_string(p)), p);
  EXPECT_THROW(parse_kernel_policy("avx512"), Error);
  EXPECT_THROW(parse_kernel_policy(""), Error);
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernel_isa_compiled(KernelIsa::Scalar));
  EXPECT_TRUE(kernel_isa_supported(KernelIsa::Scalar));
  const KernelChoice c = select_kernel(KernelPolicy::Scalar, 7, false);
  EXPECT_EQ(c.isa, KernelIsa::Scalar);
  EXPECT_NE(c.fn, nullptr);
}

TEST(KernelDispatch, SpecializationKeyedOnTapCount) {
  for (int ntaps : {7, 13, 19}) EXPECT_TRUE(kernel_has_specialization(ntaps));
  for (int ntaps : {3, 5, 9, 11, 25}) EXPECT_FALSE(kernel_has_specialization(ntaps));
  EXPECT_TRUE(select_kernel(KernelPolicy::Auto, 7, false).specialized());
  EXPECT_FALSE(select_kernel(KernelPolicy::Auto, 9, false).specialized());
  const KernelChoice legacy = select_kernel(KernelPolicy::GenericSimd, 7, false);
  EXPECT_FALSE(legacy.specialized());
  EXPECT_EQ(legacy.variant, KernelVariant::Legacy);
}

TEST(KernelDispatch, ChoiceNamesAreDescriptive) {
  const KernelChoice c = select_kernel(KernelPolicy::Scalar, 7, true);
  EXPECT_NE(c.name().find("scalar"), std::string::npos);
  EXPECT_NE(c.name().find("7pt"), std::string::npos);
  EXPECT_NE(c.name().find("banded"), std::string::npos);
  const KernelChoice g = select_kernel(KernelPolicy::Auto, 9, false);
  EXPECT_NE(g.name().find("generic"), std::string::npos);
  const KernelChoice l = select_kernel(KernelPolicy::GenericSimd, 9, false);
  EXPECT_NE(l.name().find("legacy"), std::string::npos);
}

TEST(KernelDispatch, AutoNeverDowngradesBelowForcedScalar) {
  // Auto must resolve to a compiled, host-supported ISA and a non-null fn.
  const KernelChoice c = select_kernel(KernelPolicy::Auto, 13, false);
  EXPECT_NE(c.fn, nullptr);
  EXPECT_TRUE(kernel_isa_supported(c.isa));
}

TEST(KernelDispatch, ExplainMentionsPolicyAndKernel) {
  const std::string text =
      explain_kernel_choice(KernelPolicy::Auto, 7, false);
  EXPECT_NE(text.find("policy"), std::string::npos);
  EXPECT_NE(text.find("auto"), std::string::npos);
  EXPECT_NE(text.find("selected kernel"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(KernelDispatch, EveryVariantBitIdenticalToScalar) {
  // Full-domain sweeps (periodic wrap columns included) on randomized
  // data: odd x extents exercise the vector tails, the {3,3,3} shape the
  // tiny-domain boundary split.  Tap counts covered: 3D orders 1..3 hit
  // the 7/13/19-point specializations; the 2D and 1D shapes hit the
  // generic runtime-taps kernels.
  struct Case {
    Coord shape;
    int order;
  };
  const std::vector<Case> cases = {
      {Coord{33, 7, 5}, 1},  {Coord{29, 6, 5}, 2}, {Coord{27, 7, 7}, 3},
      {Coord{21, 9}, 1},     {Coord{19, 8}, 2},    {Coord{37}, 1},
      {Coord{5, 5, 5}, 2},  // smallest legal domain: 1-wide fast range
  };
  for (const Case& c : cases) {
    for (const bool banded : {false, true}) {
      const StencilSpec st = banded
                                 ? StencilSpec::banded_star(c.shape.rank(), c.order)
                                 : StencilSpec::stable_star(c.shape.rank(), c.order);
      const std::vector<double> ref =
          run_with_policy(c.shape, st, KernelPolicy::Scalar, 3, 1234);
      for (KernelPolicy policy : host_policies()) {
        const std::vector<double> got =
            run_with_policy(c.shape, st, policy, 3, 1234);
        EXPECT_TRUE(bitwise_equal(ref, got))
            << "policy=" << to_string(policy) << " shape=" << c.shape
            << " order=" << c.order << " banded=" << banded;
      }
    }
  }
}

TEST(KernelDispatch, SpecializedMatchesGenericRowKernels) {
  // Direct row harness: for every supported ISA and tap count with a
  // specialization, the unrolled kernel must agree bitwise with the
  // generic runtime-taps kernel on the same inputs, over full rows and
  // unaligned subranges (vector tails).
  std::vector<KernelIsa> isas{KernelIsa::Scalar};
  if (kernel_isa_supported(KernelIsa::SSE2)) isas.push_back(KernelIsa::SSE2);
  if (kernel_isa_supported(KernelIsa::AVX2)) isas.push_back(KernelIsa::AVX2);

  const Index nx = 41;
  const Index margin = 64;
  for (int ntaps : {7, 13, 19}) {
    std::vector<double> src(static_cast<std::size_t>(nx + 2 * margin));
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = initial_value(static_cast<Index>(i), 7);
    std::vector<double> coeffs(static_cast<std::size_t>(ntaps));
    std::vector<Index> bases(static_cast<std::size_t>(ntaps));
    std::vector<std::vector<double>> bands(static_cast<std::size_t>(ntaps));
    std::vector<const double*> bandp(static_cast<std::size_t>(ntaps));
    for (int p = 0; p < ntaps; ++p) {
      coeffs[static_cast<std::size_t>(p)] = initial_value(p, 21);
      bases[static_cast<std::size_t>(p)] = margin + (p % 2 ? p : -p);
      bands[static_cast<std::size_t>(p)].resize(static_cast<std::size_t>(nx));
      for (Index x = 0; x < nx; ++x)
        bands[static_cast<std::size_t>(p)][static_cast<std::size_t>(x)] =
            initial_value(p * nx + x, 5);
      bandp[static_cast<std::size_t>(p)] = bands[static_cast<std::size_t>(p)].data();
    }

    for (KernelIsa isa : isas) {
      for (const bool banded : {false, true}) {
        const KernelChoice spec = select_kernel_isa(isa, false, ntaps, banded);
        const KernelChoice gen = select_kernel_isa(isa, false, ntaps, banded,
                                                   KernelVariant::Generic);
        const KernelChoice leg = select_kernel_isa(isa, false, ntaps, banded,
                                                   KernelVariant::Legacy);
        ASSERT_TRUE(spec.specialized());
        ASSERT_EQ(gen.variant, KernelVariant::Generic);
        ASSERT_EQ(leg.variant, KernelVariant::Legacy);
        for (const auto& [x0, x1] : std::vector<std::pair<Index, Index>>{
                 {0, nx}, {1, nx - 2}, {5, 9}, {3, 3}}) {
          std::vector<double> d1(static_cast<std::size_t>(nx), -1.0);
          std::vector<double> d2(static_cast<std::size_t>(nx), -1.0);
          std::vector<double> d3(static_cast<std::size_t>(nx), -1.0);
          KernelArgs ka;
          ka.src = src.data();
          ka.coeffs = coeffs.data();
          ka.bands = bandp.data();
          ka.ntaps = ntaps;
          ka.dst = d1.data();
          spec.fn(ka, bases.data(), 0, x0, x1);
          ka.dst = d2.data();
          gen.fn(ka, bases.data(), 0, x0, x1);
          ka.dst = d3.data();
          leg.fn(ka, bases.data(), 0, x0, x1);
          EXPECT_TRUE(bitwise_equal(d1, d2) && bitwise_equal(d1, d3))
              << "isa=" << to_string(isa) << " ntaps=" << ntaps
              << " banded=" << banded << " x0=" << x0 << " x1=" << x1;
        }
      }
    }
  }
}

TEST(KernelDispatch, FmaVariantIsCloseButOptIn) {
  if (!(kernel_isa_supported(KernelIsa::AVX2) && CpuFeatures::host().fma))
    GTEST_SKIP() << "host has no AVX2+FMA";
  const KernelChoice c = select_kernel(KernelPolicy::FMA, 7, false);
  EXPECT_TRUE(c.fma);
  const Coord shape{32, 8, 8};
  const StencilSpec st = StencilSpec::paper_3d7p();
  const std::vector<double> ref =
      run_with_policy(shape, st, KernelPolicy::Scalar, 3, 99);
  const std::vector<double> fma =
      run_with_policy(shape, st, KernelPolicy::FMA, 3, 99);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    worst = std::max(worst, std::abs(ref[i] - fma[i]) /
                                std::max(1.0, std::abs(ref[i])));
  EXPECT_LE(worst, 1e-13);  // contracted, so close but not necessarily equal
}

TEST(KernelDispatch, ExecutorReportsItsKernel) {
  Problem p(Coord{16, 4, 4}, StencilSpec::paper_3d7p());
  p.initialize();
  Executor e(p, {}, KernelPolicy::Scalar);
  EXPECT_EQ(e.kernel().isa, KernelIsa::Scalar);
  EXPECT_TRUE(e.kernel().specialized());
  EXPECT_EQ(e.kernel().ntaps, 7);
}

}  // namespace
}  // namespace nustencil::core
