// Kernel engine: policy parsing, CPUID-driven selection, and the
// bit-exactness contract — every kernel variant the host supports
// (scalar/SSE2/AVX2, specialized and generic, constant and banded,
// orders 1-3) must produce bitwise-identical results to the scalar
// reference on randomized domains, including the periodic wrap columns.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "core/executor.hpp"
#include "core/kernels.hpp"
#include "core/reference.hpp"

namespace nustencil::core {
namespace {

Box whole(const Coord& shape) {
  Box b;
  b.lo = Coord::filled(shape.rank(), 0);
  b.hi = shape;
  return b;
}

/// Every policy that resolves to a distinct runnable variant on this host.
std::vector<KernelPolicy> host_policies() {
  std::vector<KernelPolicy> ps{KernelPolicy::Scalar};
  if (kernel_isa_supported(KernelIsa::SSE2)) ps.push_back(KernelPolicy::SSE2);
  if (kernel_isa_supported(KernelIsa::AVX2)) ps.push_back(KernelPolicy::AVX2);
  ps.push_back(KernelPolicy::GenericSimd);
  ps.push_back(KernelPolicy::Auto);
  return ps;
}

/// Runs `steps` full-domain sweeps and returns the *logical* cells of the
/// final buffer in dense order, so padded and dense runs compare 1:1.
/// `chosen` (optional) receives the executor's kernel choice.
std::vector<double> run_with_policy(const Coord& shape, const StencilSpec& st,
                                    KernelPolicy policy, long steps,
                                    unsigned seed,
                                    FieldPad pad = FieldPad::None,
                                    StorePolicy stores = StorePolicy::Auto,
                                    KernelChoice* chosen = nullptr) {
  Problem p(shape, st, pad);
  p.initialize(seed);
  Executor e(p, {}, policy, stores);
  if (chosen) *chosen = e.kernel();
  for (long t = 0; t < steps; ++t) e.update_box(whole(shape), t, 0);
  const Field& f = p.buffer(steps);
  const Index xs = f.xstride();
  const Index rows = f.storage_volume() / xs;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(p.volume()));
  for (Index r = 0; r < rows; ++r)
    for (Index x = 0; x < shape[0]; ++x) out.push_back(f.data()[r * xs + x]);
  return out;
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

TEST(KernelDispatch, PolicyParsingRoundTrips) {
  for (KernelPolicy p :
       {KernelPolicy::Auto, KernelPolicy::Scalar, KernelPolicy::SSE2,
        KernelPolicy::AVX2, KernelPolicy::FMA, KernelPolicy::GenericSimd})
    EXPECT_EQ(parse_kernel_policy(to_string(p)), p);
  EXPECT_THROW(parse_kernel_policy("avx512"), Error);
  EXPECT_THROW(parse_kernel_policy(""), Error);
}

TEST(KernelDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernel_isa_compiled(KernelIsa::Scalar));
  EXPECT_TRUE(kernel_isa_supported(KernelIsa::Scalar));
  const KernelChoice c = select_kernel(KernelPolicy::Scalar, 7, false);
  EXPECT_EQ(c.isa, KernelIsa::Scalar);
  EXPECT_NE(c.fn, nullptr);
}

TEST(KernelDispatch, SpecializationKeyedOnTapCount) {
  for (int ntaps : {7, 13, 19}) EXPECT_TRUE(kernel_has_specialization(ntaps));
  for (int ntaps : {3, 5, 9, 11, 25}) EXPECT_FALSE(kernel_has_specialization(ntaps));
  EXPECT_TRUE(select_kernel(KernelPolicy::Auto, 7, false).specialized());
  EXPECT_FALSE(select_kernel(KernelPolicy::Auto, 9, false).specialized());
  const KernelChoice legacy = select_kernel(KernelPolicy::GenericSimd, 7, false);
  EXPECT_FALSE(legacy.specialized());
  EXPECT_EQ(legacy.variant, KernelVariant::Legacy);
}

TEST(KernelDispatch, ChoiceNamesAreDescriptive) {
  const KernelChoice c = select_kernel(KernelPolicy::Scalar, 7, true);
  EXPECT_NE(c.name().find("scalar"), std::string::npos);
  EXPECT_NE(c.name().find("7pt"), std::string::npos);
  EXPECT_NE(c.name().find("banded"), std::string::npos);
  const KernelChoice g = select_kernel(KernelPolicy::Auto, 9, false);
  EXPECT_NE(g.name().find("generic"), std::string::npos);
  const KernelChoice l = select_kernel(KernelPolicy::GenericSimd, 9, false);
  EXPECT_NE(l.name().find("legacy"), std::string::npos);
}

TEST(KernelDispatch, AutoNeverDowngradesBelowForcedScalar) {
  // Auto must resolve to a compiled, host-supported ISA and a non-null fn.
  const KernelChoice c = select_kernel(KernelPolicy::Auto, 13, false);
  EXPECT_NE(c.fn, nullptr);
  EXPECT_TRUE(kernel_isa_supported(c.isa));
}

TEST(KernelDispatch, ExplainMentionsPolicyAndKernel) {
  const std::string text =
      explain_kernel_choice(KernelPolicy::Auto, 7, false);
  EXPECT_NE(text.find("policy"), std::string::npos);
  EXPECT_NE(text.find("auto"), std::string::npos);
  EXPECT_NE(text.find("selected kernel"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
}

TEST(KernelDispatch, EveryVariantBitIdenticalToScalar) {
  // Full-domain sweeps (periodic wrap columns included) on randomized
  // data: odd x extents exercise the vector tails, the {3,3,3} shape the
  // tiny-domain boundary split.  Tap counts covered: 3D orders 1..3 hit
  // the 7/13/19-point specializations; the 2D and 1D shapes hit the
  // generic runtime-taps kernels.
  struct Case {
    Coord shape;
    int order;
  };
  const std::vector<Case> cases = {
      {Coord{33, 7, 5}, 1},  {Coord{29, 6, 5}, 2}, {Coord{27, 7, 7}, 3},
      {Coord{21, 9}, 1},     {Coord{19, 8}, 2},    {Coord{37}, 1},
      {Coord{5, 5, 5}, 2},  // smallest legal domain: 1-wide fast range
  };
  for (const Case& c : cases) {
    for (const bool banded : {false, true}) {
      const StencilSpec st = banded
                                 ? StencilSpec::banded_star(c.shape.rank(), c.order)
                                 : StencilSpec::stable_star(c.shape.rank(), c.order);
      const std::vector<double> ref =
          run_with_policy(c.shape, st, KernelPolicy::Scalar, 3, 1234);
      for (KernelPolicy policy : host_policies()) {
        const std::vector<double> got =
            run_with_policy(c.shape, st, policy, 3, 1234);
        EXPECT_TRUE(bitwise_equal(ref, got))
            << "policy=" << to_string(policy) << " shape=" << c.shape
            << " order=" << c.order << " banded=" << banded;
      }
    }
  }
}

TEST(KernelDispatch, SpecializedMatchesGenericRowKernels) {
  // Direct row harness: for every supported ISA and tap count with a
  // specialization, the unrolled kernel must agree bitwise with the
  // generic runtime-taps kernel on the same inputs, over full rows and
  // unaligned subranges (vector tails).
  std::vector<KernelIsa> isas{KernelIsa::Scalar};
  if (kernel_isa_supported(KernelIsa::SSE2)) isas.push_back(KernelIsa::SSE2);
  if (kernel_isa_supported(KernelIsa::AVX2)) isas.push_back(KernelIsa::AVX2);

  const Index nx = 41;
  const Index margin = 64;
  for (int ntaps : {7, 13, 19}) {
    std::vector<double> src(static_cast<std::size_t>(nx + 2 * margin));
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = initial_value(static_cast<Index>(i), 7);
    std::vector<double> coeffs(static_cast<std::size_t>(ntaps));
    std::vector<Index> bases(static_cast<std::size_t>(ntaps));
    std::vector<std::vector<double>> bands(static_cast<std::size_t>(ntaps));
    std::vector<const double*> bandp(static_cast<std::size_t>(ntaps));
    for (int p = 0; p < ntaps; ++p) {
      coeffs[static_cast<std::size_t>(p)] = initial_value(p, 21);
      bases[static_cast<std::size_t>(p)] = margin + (p % 2 ? p : -p);
      bands[static_cast<std::size_t>(p)].resize(static_cast<std::size_t>(nx));
      for (Index x = 0; x < nx; ++x)
        bands[static_cast<std::size_t>(p)][static_cast<std::size_t>(x)] =
            initial_value(p * nx + x, 5);
      bandp[static_cast<std::size_t>(p)] = bands[static_cast<std::size_t>(p)].data();
    }

    for (KernelIsa isa : isas) {
      for (const bool banded : {false, true}) {
        const KernelChoice spec = select_kernel_isa(isa, false, ntaps, banded);
        const KernelChoice gen = select_kernel_isa(isa, false, ntaps, banded,
                                                   KernelVariant::Generic);
        const KernelChoice leg = select_kernel_isa(isa, false, ntaps, banded,
                                                   KernelVariant::Legacy);
        ASSERT_TRUE(spec.specialized());
        ASSERT_EQ(gen.variant, KernelVariant::Generic);
        ASSERT_EQ(leg.variant, KernelVariant::Legacy);
        for (const auto& [x0, x1] : std::vector<std::pair<Index, Index>>{
                 {0, nx}, {1, nx - 2}, {5, 9}, {3, 3}}) {
          std::vector<double> d1(static_cast<std::size_t>(nx), -1.0);
          std::vector<double> d2(static_cast<std::size_t>(nx), -1.0);
          std::vector<double> d3(static_cast<std::size_t>(nx), -1.0);
          KernelArgs ka;
          ka.src = src.data();
          ka.coeffs = coeffs.data();
          ka.bands = bandp.data();
          ka.ntaps = ntaps;
          ka.dst = d1.data();
          spec.fn(ka, bases.data(), 0, x0, x1);
          ka.dst = d2.data();
          gen.fn(ka, bases.data(), 0, x0, x1);
          ka.dst = d3.data();
          leg.fn(ka, bases.data(), 0, x0, x1);
          EXPECT_TRUE(bitwise_equal(d1, d2) && bitwise_equal(d1, d3))
              << "isa=" << to_string(isa) << " ntaps=" << ntaps
              << " banded=" << banded << " x0=" << x0 << " x1=" << x1;
        }
      }
    }
  }
}

TEST(KernelDispatch, FmaVariantIsCloseButOptIn) {
  if (!(kernel_isa_supported(KernelIsa::AVX2) && CpuFeatures::host().fma))
    GTEST_SKIP() << "host has no AVX2+FMA";
  const KernelChoice c = select_kernel(KernelPolicy::FMA, 7, false);
  EXPECT_TRUE(c.fma);
  const Coord shape{32, 8, 8};
  const StencilSpec st = StencilSpec::paper_3d7p();
  const std::vector<double> ref =
      run_with_policy(shape, st, KernelPolicy::Scalar, 3, 99);
  const std::vector<double> fma =
      run_with_policy(shape, st, KernelPolicy::FMA, 3, 99);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    worst = std::max(worst, std::abs(ref[i] - fma[i]) /
                                std::max(1.0, std::abs(ref[i])));
  EXPECT_LE(worst, 1e-13);  // contracted, so close but not necessarily equal
}

TEST(KernelDispatch, ExecutorReportsItsKernel) {
  Problem p(Coord{16, 4, 4}, StencilSpec::paper_3d7p());
  p.initialize();
  Executor e(p, {}, KernelPolicy::Scalar);
  EXPECT_EQ(e.kernel().isa, KernelIsa::Scalar);
  EXPECT_TRUE(e.kernel().specialized());
  EXPECT_EQ(e.kernel().ntaps, 7);
}

TEST(KernelDispatch, PolicyNamesAreCaseInsensitive) {
  EXPECT_EQ(parse_kernel_policy("AVX2"), KernelPolicy::AVX2);
  EXPECT_EQ(parse_kernel_policy("Fma"), KernelPolicy::FMA);
  EXPECT_EQ(parse_kernel_policy("SCALAR"), KernelPolicy::Scalar);
  EXPECT_EQ(parse_store_policy("Stream"), StorePolicy::Stream);
  EXPECT_EQ(parse_store_policy("REGULAR"), StorePolicy::Regular);
}

TEST(KernelDispatch, StorePolicyParsingRoundTrips) {
  for (StorePolicy s :
       {StorePolicy::Auto, StorePolicy::Stream, StorePolicy::Regular})
    EXPECT_EQ(parse_store_policy(to_string(s)), s);
  EXPECT_THROW(parse_store_policy("nontemporal"), Error);
  EXPECT_THROW(parse_store_policy(""), Error);
}

TEST(KernelDispatch, FieldPaddingInvariants) {
  // Rows64 pads the unit-stride extent to a multiple of 8 doubles and
  // keeps every row base on a 64-byte boundary.
  const Field padded(Coord{37, 5, 3}, FieldPad::Rows64);
  EXPECT_EQ(padded.xstride(), 40);
  EXPECT_EQ(padded.storage_volume(), 40 * 5 * 3);
  EXPECT_EQ(padded.volume(), 37 * 5 * 3);
  EXPECT_EQ(padded.strides()[1], 40);
  EXPECT_EQ(padded.strides()[2], 40 * 5);
  EXPECT_TRUE(padded.rows_aligned());
  // The dense layout is byte-for-byte the historical one: xstride == nx,
  // and rows are aligned exactly when nx is a multiple of 8.
  const Field dense(Coord{37, 5, 3});
  EXPECT_EQ(dense.xstride(), 37);
  EXPECT_EQ(dense.storage_volume(), dense.volume());
  EXPECT_FALSE(dense.rows_aligned());
  EXPECT_TRUE(Field(Coord{64, 4, 4}).rows_aligned());
  // Already-aligned extents gain no padding.
  EXPECT_EQ(Field(Coord{64, 4, 4}, FieldPad::Rows64).xstride(), 64);
}

TEST(KernelDispatch, PaddedProblemInitMatchesDense) {
  // fill_row keys values on the logical cell id, so a padded problem
  // starts from the exact per-cell data of its dense twin, with zeroed
  // padding columns.
  const Coord shape{13, 4, 3};
  Problem dense(shape, StencilSpec::banded_star(3, 1));
  Problem padded(shape, StencilSpec::banded_star(3, 1), FieldPad::Rows64);
  dense.initialize(7);
  padded.initialize(7);
  const Index xs = padded.buffer(0).xstride();
  for (Index r = 0; r < shape[1] * shape[2]; ++r) {
    for (Index x = 0; x < xs; ++x) {
      const double got = padded.buffer(0).data()[r * xs + x];
      if (x < shape[0]) {
        EXPECT_EQ(got, dense.buffer(0).data()[r * shape[0] + x]);
        for (int p = 0; p < 7; ++p)
          EXPECT_EQ(padded.band(p).data()[r * xs + x],
                    dense.band(p).data()[r * shape[0] + x]);
      } else {
        EXPECT_EQ(got, 0.0);
      }
    }
  }
}

TEST(KernelDispatch, RotatedKernelEngagesAndIsBitExact) {
  if (!kernel_isa_supported(KernelIsa::AVX2))
    GTEST_SKIP() << "host has no AVX2";
  // Prime x extents: every vector width/peel/tail path of the rotated
  // kernels runs.  All three canonical rank-3 stars must rotate.
  struct Case {
    Coord shape;
    int order;
  };
  for (const Case& c : std::vector<Case>{
           {Coord{31, 5, 4}, 1}, {Coord{37, 6, 5}, 2}, {Coord{41, 7, 7}, 3}}) {
    for (const bool banded : {false, true}) {
      const StencilSpec st = banded
                                 ? StencilSpec::banded_star(3, c.order)
                                 : StencilSpec::stable_star(3, c.order);
      const std::vector<double> ref =
          run_with_policy(c.shape, st, KernelPolicy::Scalar, 3, 42);
      KernelChoice chosen;
      const std::vector<double> got =
          run_with_policy(c.shape, st, KernelPolicy::AVX2, 3, 42,
                          FieldPad::None, StorePolicy::Auto, &chosen);
      EXPECT_TRUE(chosen.rotated)
          << "order=" << c.order << " banded=" << banded
          << " kernel=" << chosen.name();
      EXPECT_TRUE(bitwise_equal(ref, got))
          << "order=" << c.order << " banded=" << banded;
    }
  }
  // Non-rank-3 stencils have no rotated kernel.
  KernelChoice flat;
  run_with_policy(Coord{24, 9}, StencilSpec::stable_star(2, 1),
                  KernelPolicy::AVX2, 1, 42, FieldPad::None, StorePolicy::Auto,
                  &flat);
  EXPECT_FALSE(flat.rotated);
}

TEST(KernelDispatch, StreamingStoresBitExactOnPaddedLayout) {
  if (!kernel_isa_supported(KernelIsa::AVX2))
    GTEST_SKIP() << "host has no AVX2";
  // Forced streaming on a padded (aligned) layout of a prime-sized
  // domain: must engage, and stay bitwise identical to the dense scalar
  // run.
  const Coord shape{29, 6, 5};
  for (const bool banded : {false, true}) {
    const StencilSpec st =
        banded ? StencilSpec::banded_star(3, 1) : StencilSpec::stable_star(3, 1);
    const std::vector<double> ref =
        run_with_policy(shape, st, KernelPolicy::Scalar, 3, 11);
    KernelChoice chosen;
    const std::vector<double> got =
        run_with_policy(shape, st, KernelPolicy::Auto, 3, 11, FieldPad::Rows64,
                        StorePolicy::Stream, &chosen);
    EXPECT_TRUE(chosen.stream) << chosen.name();
    EXPECT_TRUE(chosen.rotated) << chosen.name();
    EXPECT_TRUE(bitwise_equal(ref, got)) << "banded=" << banded;
  }
}

TEST(KernelDispatch, StreamingFallsBackOnUnalignedRows) {
  if (!kernel_isa_supported(KernelIsa::AVX2))
    GTEST_SKIP() << "host has no AVX2";
  // Dense rows of a non-multiple-of-8 extent are not 64B-aligned, so a
  // forced Stream request degrades to regular stores (and says so in the
  // kernel name), while an aligned dense extent honours it.
  KernelChoice unaligned;
  run_with_policy(Coord{29, 6, 5}, StencilSpec::stable_star(3, 1),
                  KernelPolicy::Auto, 1, 11, FieldPad::None,
                  StorePolicy::Stream, &unaligned);
  EXPECT_FALSE(unaligned.stream) << unaligned.name();
  KernelChoice aligned;
  run_with_policy(Coord{32, 6, 5}, StencilSpec::stable_star(3, 1),
                  KernelPolicy::Auto, 1, 11, FieldPad::None,
                  StorePolicy::Stream, &aligned);
  EXPECT_TRUE(aligned.stream) << aligned.name();
  EXPECT_NE(aligned.name().find("+nt"), std::string::npos);
}

TEST(KernelDispatch, AutoStoresUseLlcThreshold) {
  if (!kernel_isa_supported(KernelIsa::AVX2))
    GTEST_SKIP() << "host has no AVX2";
  KernelRequest req;
  req.ntaps = 7;
  req.banded = false;
  req.rank = 3;
  req.order = 1;
  req.rows_aligned = true;
  req.stores = StorePolicy::Auto;
  req.bytes_touched = stream_auto_threshold_bytes();
  EXPECT_TRUE(select_kernel(KernelPolicy::Auto, req).stream);
  req.bytes_touched = stream_auto_threshold_bytes() - 1;
  EXPECT_FALSE(select_kernel(KernelPolicy::Auto, req).stream);
  // Regular always wins; Stream needs the aligned layout.
  req.bytes_touched = stream_auto_threshold_bytes();
  req.stores = StorePolicy::Regular;
  EXPECT_FALSE(select_kernel(KernelPolicy::Auto, req).stream);
  req.stores = StorePolicy::Stream;
  req.rows_aligned = false;
  EXPECT_FALSE(select_kernel(KernelPolicy::Auto, req).stream);
}

TEST(KernelDispatch, MidVectorTileStartMatchesScalar) {
  if (!kernel_isa_supported(KernelIsa::AVX2))
    GTEST_SKIP() << "host has no AVX2";
  // A tile whose x range starts mid-vector forces the rotated kernel's
  // scalar peel and (near the row end) its per-tap fallback loop; the
  // result must still be bitwise identical to the scalar executor on the
  // same sub-box.  Streaming is forced so the aligned-store discipline
  // is exercised with an unaligned x0 too.
  const Coord shape{33, 6, 5};
  const StencilSpec st = StencilSpec::stable_star(3, 1);
  for (const auto& [x0, x1] : std::vector<std::pair<Index, Index>>{
           {1, 29}, {5, 23}, {6, 33}, {2, 7}}) {
    Box tile;
    tile.lo = Coord{x0, 1, 1};
    tile.hi = Coord{x1, 5, 4};
    Problem ps(shape, st);
    ps.initialize(3);
    Executor es(ps, {}, KernelPolicy::Scalar);
    es.update_box(tile, 0, 0);
    Problem pv(shape, st, FieldPad::Rows64);
    pv.initialize(3);
    Executor ev(pv, {}, KernelPolicy::Auto, StorePolicy::Stream);
    ASSERT_TRUE(ev.kernel().rotated && ev.kernel().stream);
    ev.update_box(tile, 0, 0);
    const Index xs = pv.buffer(1).xstride();
    bool equal = true;
    for (Index r = 0; r < shape[1] * shape[2] && equal; ++r)
      for (Index x = 0; x < shape[0] && equal; ++x)
        equal = std::memcmp(&ps.buffer(1).data()[r * shape[0] + x],
                            &pv.buffer(1).data()[r * xs + x],
                            sizeof(double)) == 0;
    EXPECT_TRUE(equal) << "x0=" << x0 << " x1=" << x1;
  }
}

}  // namespace
}  // namespace nustencil::core
