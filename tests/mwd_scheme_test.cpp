// MWD / nuMWD correctness: the wavefront diamond engine against the
// reference, with dependency-order validation, deep multi-window runs,
// high orders, banded coefficients, 1D/2D/3D domains, awkward (prime)
// sizes, and the full schedule x group-size matrix.
#include <gtest/gtest.h>

#include "schemes/mwd.hpp"
#include "schemes/mwd_common.hpp"
#include "schemes/numwd.hpp"
#include "schemes/run_support.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

using schemes::MwdScheme;
using schemes::NuMwdScheme;
using schemes::RunConfig;

RunConfig mwd_config(int threads, long steps, bool check = true) {
  RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.check_dependencies = check;
  return cfg;
}

TEST(NuMwdScheme, SingleThread3D) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 12, 14}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(1, 5));
}

TEST(NuMwdScheme, FourThreads3D) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{18, 16, 14}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(4, 7));
}

TEST(NuMwdScheme, EightThreads3D) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 16, 16}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(8, 5));
}

TEST(NuMwdScheme, PrimeSizes) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{17, 13, 11}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(3, 5));
}

TEST(NuMwdScheme, SchedulesAndGroupSizes) {
  // The full matrix on a prime-sized domain: every schedule (leaders
  // drain whole columns from the pool under the stealing ones) crossed
  // with group size 1 (no intra-group split), 2 (split cross-sections +
  // per-step group barriers) and auto.
  for (const auto schedule : {sched::Schedule::Static, sched::Schedule::Steal,
                              sched::Schedule::StealLocal}) {
    for (const int group : {1, 2, 0}) {
      SCOPED_TRACE("schedule=" + std::string(sched::schedule_name(schedule)) +
                   " group=" + std::to_string(group));
      RunConfig cfg = mwd_config(4, 7);
      cfg.schedule = schedule;
      cfg.group_size = group;
      NuMwdScheme scheme;
      test::expect_matches_reference(scheme, Coord{17, 13, 11},
                                     core::StencilSpec::paper_3d7p(), cfg);
    }
  }
}

TEST(NuMwdScheme, ManyWindows) {
  NuMwdScheme scheme;
  // Deep run: many grow/shrink windows pipelined through the counters.
  test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(4, 17));
}

TEST(NuMwdScheme, HighOrder2) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{20, 18, 16}, core::StencilSpec::stable_star(3, 2),
                                 mwd_config(2, 4));
}

TEST(NuMwdScheme, HighOrder3) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{24, 22, 20}, core::StencilSpec::stable_star(3, 3),
                                 mwd_config(2, 3));
}

TEST(NuMwdScheme, Banded) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{14, 12, 10}, core::StencilSpec::banded_star(3, 1),
                                 mwd_config(2, 5));
}

TEST(NuMwdScheme, TwoDimensional) {
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{24, 18}, core::StencilSpec::stable_star(2, 1),
                                 mwd_config(3, 6));
}

TEST(NuMwdScheme, OneDimensional) {
  // Rank 1 has no cross-section to split: surplus group members idle but
  // still participate in the per-step barriers.
  NuMwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{64}, core::StencilSpec::stable_star(1, 1),
                                 mwd_config(4, 6));
}

TEST(NuMwdScheme, TauOverride) {
  for (const long tau : {1L, 2L, 5L}) {
    SCOPED_TRACE("tau=" + std::to_string(tau));
    NuMwdScheme scheme(tau);
    test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(),
                                   mwd_config(2, 6));
  }
}

TEST(NuMwdScheme, UpdateCountExact) {
  NuMwdScheme scheme;
  core::Problem problem(Coord{12, 12, 12}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, mwd_config(4, 9));
  EXPECT_EQ(result.updates, 12 * 12 * 12 * 9);
  EXPECT_GT(result.details.at("tau"), 0.0);
  EXPECT_GE(result.details.at("columns"), 1.0);
  EXPECT_GE(result.details.at("group_size"), 1.0);
}

TEST(NuMwdScheme, RejectsInvalidConfigurations) {
  NuMwdScheme scheme;
  {
    // Group size must divide the thread count.
    core::Problem p(Coord{12, 12, 12}, core::StencilSpec::paper_3d7p());
    RunConfig cfg = mwd_config(4, 3);
    cfg.group_size = 3;
    EXPECT_THROW(scheme.run(p, cfg), Error);
  }
  {
    // The traversal dimension must hold at least one 2s-wide diamond.
    // (Problem itself already rejects extents <= 2s, so the planner's
    // check is exercised directly.)
    EXPECT_THROW(schemes::plan_mwd(Coord{12, 12, 3},
                                   core::StencilSpec::stable_star(3, 2),
                                   schemes::default_machine(), 2, 3,
                                   /*numa_aware=*/true, /*group_size=*/0),
                 Error);
  }
  {
    // Diamond columns wrap: periodic boundaries only.
    core::Problem p(Coord{12, 12, 12}, core::StencilSpec::paper_3d7p());
    RunConfig cfg = mwd_config(2, 3);
    cfg.boundary = core::Boundary::dirichlet();
    EXPECT_THROW(scheme.run(p, cfg), Error);
  }
}

TEST(MwdPlan, SizesGroupsAndColumnsFromTheMachine) {
  const auto& machine = schemes::default_machine();  // Xeon X7550: LLC shared by 8
  const core::StencilSpec st = core::StencilSpec::paper_3d7p();
  const schemes::MwdPlan plan =
      schemes::plan_mwd(Coord{48, 48, 48}, st, machine, 16, 12,
                        /*numa_aware=*/true, /*group_size=*/0);
  EXPECT_EQ(plan.group_size, 8);
  EXPECT_EQ(plan.groups, 2);
  EXPECT_EQ(plan.gy * plan.gx, plan.group_size);
  // Feasibility: every cut gap holds a full diamond, and the ring is
  // partitioned exactly.
  ASSERT_GE(plan.columns, plan.groups);
  EXPECT_EQ(plan.cuts.front(), 0);
  EXPECT_EQ(plan.cuts.back(), 48);
  for (int j = 0; j < plan.columns; ++j) {
    const Index gap = plan.cuts[static_cast<std::size_t>(j) + 1] -
                      plan.cuts[static_cast<std::size_t>(j)];
    EXPECT_GE(gap, 2 * st.order() * plan.tau);
  }
  // nuMWD ownership is contiguous along the ring.
  for (int j = 1; j < plan.columns; ++j)
    EXPECT_GE(plan.owner_group[static_cast<std::size_t>(j)],
              plan.owner_group[static_cast<std::size_t>(j) - 1]);
}

TEST(MwdPlan, ExplicitGroupSizeWinsAndTauOverrideIsClamped) {
  const auto& machine = schemes::default_machine();
  const core::StencilSpec st = core::StencilSpec::paper_3d7p();
  const schemes::MwdPlan plan = schemes::plan_mwd(
      Coord{32, 32, 32}, st, machine, 8, 10, /*numa_aware=*/false,
      /*group_size=*/2, /*tau_override=*/1000);
  EXPECT_EQ(plan.group_size, 2);
  EXPECT_EQ(plan.groups, 4);
  EXPECT_LE(2 * st.order() * plan.tau, 32);  // clamped to the feasible height
  EXPECT_THROW(schemes::plan_mwd(Coord{32, 32, 32}, st, machine, 8, 10, false,
                                 /*group_size=*/3),
               Error);
}

TEST(NuMwdScheme, InstrumentedLocalityBeatsSerialInitMwd) {
  // Two groups on two sockets; nuMWD first-touches each group's home
  // range of the ring, MWD leaves every page on node 0.  The V diamonds
  // breathe across the cut between the groups, so locality is below the
  // CATS-family ~1.0, but must clearly beat the serial-init variant.
  RunConfig cfg = mwd_config(16, 12, /*check=*/false);
  cfg.instrument = true;
  core::Problem numa_problem(Coord{48, 48, 48}, core::StencilSpec::paper_3d7p());
  const auto numa_result = NuMwdScheme().run(numa_problem, cfg);
  core::Problem blind_problem(Coord{48, 48, 48}, core::StencilSpec::paper_3d7p());
  const auto blind_result = MwdScheme().run(blind_problem, cfg);
  EXPECT_GT(numa_result.traffic.locality(), 0.55);
  EXPECT_GT(numa_result.traffic.locality(), blind_result.traffic.locality() + 0.1);
  EXPECT_EQ(numa_result.details.at("groups"), 2.0);
}

TEST(MwdScheme, MatchesReference) {
  MwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 14, 12}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(4, 6));
}

TEST(MwdScheme, MatchesReferenceManyThreads) {
  MwdScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 16, 16}, core::StencilSpec::paper_3d7p(),
                                 mwd_config(8, 5));
}

TEST(MwdScheme, StealingMatchesReference) {
  MwdScheme scheme;
  RunConfig cfg = mwd_config(4, 8);
  cfg.schedule = sched::Schedule::Steal;
  cfg.group_size = 2;
  test::expect_matches_reference(scheme, Coord{16, 14, 12}, core::StencilSpec::paper_3d7p(),
                                 cfg);
}

}  // namespace
}  // namespace nustencil
