// Set-associative LRU cache simulator and multi-level hierarchy.
#include <gtest/gtest.h>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "topology/machine.hpp"

namespace nustencil::cachesim {
namespace {

TEST(Cache, HitAfterFill) {
  Cache c(1024, 64, 2);
  EXPECT_FALSE(c.access(0, false));
  EXPECT_TRUE(c.access(0, false));
  EXPECT_TRUE(c.access(63, false));   // same line
  EXPECT_FALSE(c.access(64, false));  // next line
  EXPECT_EQ(c.counters().hits, 2u);
  EXPECT_EQ(c.counters().misses, 2u);
}

TEST(Cache, LruEvictionWithinSet) {
  // 2-way, 8 sets of 64B lines: addresses 0, 512, 1024 map to set 0.
  Cache c(1024, 64, 2);
  EXPECT_EQ(c.sets(), 8);
  c.access(0, false);
  c.access(512, false);
  c.access(0, false);      // refresh line 0
  c.access(1024, false);   // evicts 512 (LRU), not 0
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(512));
  EXPECT_TRUE(c.contains(1024));
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache c(128, 64, 1);  // direct-mapped, 2 sets
  c.access(0, true);    // dirty line in set 0
  bool dirty = false;
  Addr victim = 0;
  c.access(128, false, &dirty, &victim);  // same set, evicts line 0
  EXPECT_TRUE(dirty);
  EXPECT_EQ(victim, 0u);
  EXPECT_EQ(c.counters().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback) {
  Cache c(128, 64, 1);
  c.access(0, false);
  c.access(128, false);
  EXPECT_EQ(c.counters().writebacks, 0u);
}

TEST(Cache, FullyAssociative) {
  Cache c(256, 64, 0);
  EXPECT_EQ(c.ways(), 4);
  EXPECT_EQ(c.sets(), 1);
  for (Addr a = 0; a < 4; ++a) c.access(a * 1024, false);
  for (Addr a = 0; a < 4; ++a) EXPECT_TRUE(c.contains(a * 1024));
  c.access(5 * 1024, false);  // evicts the LRU (addr 0)
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, FlushWritesBackDirtyLines) {
  Cache c(256, 64, 0);
  c.access(0, true);
  c.access(64, false);
  c.flush();
  EXPECT_EQ(c.counters().writebacks, 1u);
  EXPECT_FALSE(c.contains(0));
}

TEST(Cache, WorkingSetLargerThanCacheStreams) {
  Cache c(4096, 64, 4);
  // Two sweeps over 4x the capacity: all misses (LRU streams through).
  for (int pass = 0; pass < 2; ++pass)
    for (Addr a = 0; a < 16384; a += 64) c.access(a, false);
  EXPECT_EQ(c.counters().hits, 0u);
}

TEST(Cache, WorkingSetFitsAllHitsSecondPass) {
  Cache c(4096, 64, 0);
  for (Addr a = 0; a < 4096; a += 64) c.access(a, false);
  c.reset_counters();
  for (Addr a = 0; a < 4096; a += 64) c.access(a, false);
  EXPECT_EQ(c.counters().misses, 0u);
}

TEST(Cache, InvalidGeometryThrows) {
  EXPECT_THROW(Cache(100, 64, 1), Error);  // size not multiple of line
  EXPECT_THROW(Cache(128, 48, 1), Error);  // line not a power of two
}

TEST(Hierarchy, L1HitDoesNotTouchMemory) {
  const auto machine = topology::xeonX7550();
  Hierarchy h(machine, 1);
  h.access(0, 0, 64, false);
  h.access(0, 0, 64, false);
  const auto t = h.traffic();
  EXPECT_EQ(t.memory_reads, 1u);
  EXPECT_EQ(t.level[0].hits, 1u);
}

TEST(Hierarchy, SharedL3AcrossCores) {
  const auto machine = topology::xeonX7550();
  Hierarchy h(machine, 8);  // one socket: shared L3
  h.access(0, 0, 64, false);   // core 0 fills L1(0), L2(0), L3(socket)
  h.access(7, 0, 64, false);   // core 7 misses L1/L2, hits the shared L3
  const auto t = h.traffic();
  EXPECT_EQ(t.memory_reads, 1u);
  EXPECT_EQ(t.level[2].hits, 1u);
}

TEST(Hierarchy, PrivateCachesDoNotShare) {
  const auto machine = topology::opteron8222();  // private L1+L2 only
  Hierarchy h(machine, 2);
  h.access(0, 0, 64, false);
  h.access(1, 0, 64, false);  // different core: full miss path
  EXPECT_EQ(h.traffic().memory_reads, 2u);
}

TEST(Hierarchy, MultiLineAccessCountsEachLine) {
  const auto machine = topology::xeonX7550();
  Hierarchy h(machine, 1);
  h.access(0, 0, 256, false);  // 4 lines
  EXPECT_EQ(h.traffic().memory_reads, 4u);
}

TEST(Hierarchy, StencilSweepTrafficMatchesAnalyticBounds) {
  // A small 2-pass Jacobi-like sweep: first pass compulsory misses, second
  // pass all from cache when the domain fits the hierarchy.
  const auto machine = topology::xeonX7550();
  Hierarchy h(machine, 1);
  const Index n = 64;  // 64 lines = 4 KiB, fits L1
  for (int pass = 0; pass < 2; ++pass)
    for (Index i = 0; i < n; ++i) h.access(0, static_cast<Addr>(i) * 64, 64, pass == 1);
  const auto t = h.traffic();
  EXPECT_EQ(t.memory_reads, static_cast<std::uint64_t>(n));
  EXPECT_EQ(t.level[0].hits, static_cast<std::uint64_t>(n));
}

}  // namespace
}  // namespace nustencil::cachesim
