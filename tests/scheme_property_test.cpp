// Cross-scheme property sweep: every scheme, on a grid of (shape, order,
// threads, steps, stencil kind) configurations, must reproduce the
// reference exactly and update every cell exactly `steps` times.
#include <gtest/gtest.h>

#include "schemes/scheme.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

struct Config {
  std::string scheme;
  Coord shape;
  int order;
  bool banded;
  int threads;
  long steps;

  friend std::ostream& operator<<(std::ostream& os, const Config& c) {
    return os << c.scheme << " " << c.shape << " s=" << c.order
              << (c.banded ? " banded" : "") << " n=" << c.threads << " T=" << c.steps;
  }
};

class SchemeProperty : public ::testing::TestWithParam<Config> {};

TEST_P(SchemeProperty, MatchesReferenceWithDependencyChecking) {
  const Config& c = GetParam();
  const auto scheme = schemes::make_scheme(c.scheme);
  schemes::RunConfig cfg;
  cfg.num_threads = c.threads;
  cfg.timesteps = c.steps;
  cfg.check_dependencies = true;
  if (c.scheme == "CATS" || c.scheme == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  const core::StencilSpec st = c.banded
                                   ? core::StencilSpec::banded_star(c.shape.rank(), c.order)
                                   : core::StencilSpec::stable_star(c.shape.rank(), c.order);
  const auto result = test::expect_matches_reference(*scheme, c.shape, st, cfg);
  EXPECT_EQ(result.updates, [&] {
    if (cfg.boundary.all_periodic(c.shape.rank())) return c.shape.product() * c.steps;
    // Dirichlet z: only the interior of the wavefront dimension updates.
    Coord interior = c.shape;
    interior[2] -= 2 * c.order;
    return interior.product() * c.steps;
  }());
}

std::vector<Config> make_configs() {
  std::vector<Config> configs;
  // Every scheme on the canonical small 3D problem with several thread
  // counts, including oversubscription-ish counts and primes.
  for (const auto& scheme : schemes::scheme_names()) {
    for (int threads : {1, 2, 3, 5, 8}) {
      configs.push_back({scheme, Coord{18, 14, 16}, 1, false, threads, 6});
    }
    configs.push_back({scheme, Coord{16, 12, 12}, 1, true, 4, 5});   // banded
    configs.push_back({scheme, Coord{24, 20, 20}, 2, false, 2, 4});  // order 2
  }
  // Deep runs (many layers/chunks) for the temporal blockers.
  for (const std::string scheme : {"nuCORALS", "nuCATS", "CATS", "CORALS", "nuMWD", "MWD"}) {
    configs.push_back({scheme, Coord{14, 12, 14}, 1, false, 4, 23});
  }
  // Order 3 on the main contributions.
  for (const std::string scheme : {"nuCORALS", "nuCATS", "nuMWD"}) {
    configs.push_back({scheme, Coord{26, 22, 22}, 3, false, 2, 3});
  }
  // Non-cubic, prime-ish shapes.
  for (const std::string scheme : {"nuCORALS", "NaiveSSE", "Pochoir", "PLuTo", "nuMWD"}) {
    configs.push_back({scheme, Coord{31, 9, 23}, 1, false, 3, 5});
  }
  return configs;
}

std::string config_name(const ::testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  std::string name = c.scheme + "_" + std::to_string(c.shape[0]) + "x" +
                     std::to_string(c.shape[1]) + "x" + std::to_string(c.shape[2]) +
                     "_s" + std::to_string(c.order) + (c.banded ? "_banded" : "") +
                     "_n" + std::to_string(c.threads) + "_T" + std::to_string(c.steps);
  for (char& ch : name)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeProperty, ::testing::ValuesIn(make_configs()),
                         config_name);

}  // namespace
}  // namespace nustencil
