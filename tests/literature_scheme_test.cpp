// Trapezoid (Pochoir stand-in) and Diamond (PLuTo stand-in) correctness,
// plus the scheme factory.
#include <gtest/gtest.h>

#include "schemes/diamond.hpp"
#include "schemes/scheme.hpp"
#include "schemes/trapezoid.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

using schemes::DiamondScheme;
using schemes::RunConfig;
using schemes::TrapezoidScheme;

RunConfig periodic_config(int threads, long steps, bool check = true) {
  RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.check_dependencies = check;
  return cfg;
}

TEST(TrapezoidScheme, SingleThread) {
  TrapezoidScheme scheme;
  test::expect_matches_reference(scheme, Coord{14, 12, 16}, core::StencilSpec::paper_3d7p(),
                                 periodic_config(1, 5));
}

TEST(TrapezoidScheme, MultiThread) {
  TrapezoidScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 14, 24}, core::StencilSpec::paper_3d7p(),
                                 periodic_config(4, 7));
}

TEST(TrapezoidScheme, HighOrder) {
  TrapezoidScheme scheme;
  test::expect_matches_reference(scheme, Coord{18, 16, 32}, core::StencilSpec::stable_star(3, 2),
                                 periodic_config(2, 5));
}

TEST(TrapezoidScheme, Banded) {
  TrapezoidScheme scheme;
  test::expect_matches_reference(scheme, Coord{12, 10, 20}, core::StencilSpec::banded_star(3, 1),
                                 periodic_config(2, 6));
}

TEST(TrapezoidScheme, TwoDimensional) {
  TrapezoidScheme scheme;
  test::expect_matches_reference(scheme, Coord{24, 20}, core::StencilSpec::stable_star(2, 1),
                                 periodic_config(3, 5));
}

TEST(DiamondScheme, SingleThread) {
  DiamondScheme scheme;
  test::expect_matches_reference(scheme, Coord{14, 12, 16}, core::StencilSpec::paper_3d7p(),
                                 periodic_config(1, 5));
}

TEST(DiamondScheme, MultiThread) {
  DiamondScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 14, 24}, core::StencilSpec::paper_3d7p(),
                                 periodic_config(4, 7));
}

TEST(DiamondScheme, ManySteps) {
  DiamondScheme scheme;
  test::expect_matches_reference(scheme, Coord{12, 12, 16}, core::StencilSpec::paper_3d7p(),
                                 periodic_config(4, 19));
}

TEST(DiamondScheme, HighOrder) {
  DiamondScheme scheme;
  test::expect_matches_reference(scheme, Coord{18, 16, 24}, core::StencilSpec::stable_star(3, 2),
                                 periodic_config(2, 4));
}

TEST(DiamondScheme, BlockOverride) {
  for (long block : {1L, 3L, 8L}) {
    DiamondScheme scheme(block);
    test::expect_matches_reference(scheme, Coord{12, 10, 16}, core::StencilSpec::paper_3d7p(),
                                   periodic_config(2, 6));
  }
}

TEST(DiamondScheme, LocalityPoorAcrossSockets) {
  DiamondScheme scheme;
  RunConfig cfg = periodic_config(16, 6, /*check=*/false);
  cfg.instrument = true;
  core::Problem problem(Coord{32, 32, 64}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  EXPECT_LT(result.traffic.locality(), 0.7);
}

TEST(SchemeFactory, CreatesAllNamedSchemes) {
  for (const auto& name : schemes::scheme_names()) {
    auto scheme = schemes::make_scheme(name);
    ASSERT_NE(scheme, nullptr);
    EXPECT_EQ(scheme->name(), name);
  }
  EXPECT_THROW(schemes::make_scheme("nope"), Error);
}

TEST(SchemeFactory, NumaAwarenessFlags) {
  EXPECT_TRUE(schemes::make_scheme("nuCATS")->numa_aware());
  EXPECT_TRUE(schemes::make_scheme("nuCORALS")->numa_aware());
  EXPECT_TRUE(schemes::make_scheme("nuMWD")->numa_aware());
  EXPECT_TRUE(schemes::make_scheme("NaiveSSE")->numa_aware());
  EXPECT_FALSE(schemes::make_scheme("CATS")->numa_aware());
  EXPECT_FALSE(schemes::make_scheme("CORALS")->numa_aware());
  EXPECT_FALSE(schemes::make_scheme("MWD")->numa_aware());
  EXPECT_FALSE(schemes::make_scheme("Pochoir")->numa_aware());
  EXPECT_FALSE(schemes::make_scheme("PLuTo")->numa_aware());
}

}  // namespace
}  // namespace nustencil
