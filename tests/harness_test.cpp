// Figure harness: spec catalogue sanity and an end-to-end smoke run that
// asserts the paper's qualitative results (who wins, where the cliffs
// are) rather than absolute numbers.
#include <gtest/gtest.h>

#include "harness/specs.hpp"

namespace nustencil::harness {
namespace {

FigureOptions tiny_options() {
  FigureOptions opt;
  opt.sim_domain = 24;
  opt.sim_steps = 4;
  return opt;
}

TEST(Specs, CatalogueIsComplete) {
  for (const auto& make :
       {fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
        fig15, fig20, fig21, fig22}) {
    const FigureSpec s = make();
    EXPECT_FALSE(s.id.empty());
    EXPECT_FALSE(s.series.empty());
    EXPECT_FALSE(s.cores.empty());
    EXPECT_FALSE(s.paper_gflops_at_max.empty());
    EXPECT_EQ(s.cores.back(), s.machine.cores());
  }
  for (const auto& make : {fig16, fig17, fig18, fig19}) {
    const HighOrderSpec s = make();
    EXPECT_EQ(s.paper_gflops_at_max.size(), 6u);  // 2 schemes x 3 orders
  }
}

TEST(Specs, WeakAndStrongConfiguredAsInPaper) {
  EXPECT_TRUE(fig04().weak);
  EXPECT_EQ(fig04().domain, 200);
  EXPECT_FALSE(fig06().weak);
  EXPECT_EQ(fig06().domain, 160);
  EXPECT_EQ(fig08().domain, 500);
  EXPECT_TRUE(fig10().banded);
  EXPECT_FALSE(fig04().banded);
  EXPECT_EQ(fig20().series.size(), 7u);  // all schemes compared
}

TEST(Harness, Figure22ShapeHolds) {
  // Strong scaling 160^3 on the Xeon, the paper's starkest NUMA result:
  // at 32 cores every NUMA-aware scheme (and even the naive one) must beat
  // every NUMA-ignorant temporal blocking scheme.
  FigureSpec spec = fig22();
  spec.cores = {8, 32};
  const FigureResult r = run_figure(spec, tiny_options());
  const auto at32 = [&](const std::string& s) { return r.values.at(s).back(); };
  for (const std::string blind : {"CATS", "CORALS", "Pochoir", "PLuTo"}) {
    EXPECT_GT(at32("nuCORALS"), at32(blind)) << blind;
    EXPECT_GT(at32("nuCATS"), at32(blind)) << blind;
    EXPECT_GT(at32("NaiveSSE"), at32(blind))
        << "the NUMA-aware naive scheme must beat NUMA-ignorant " << blind;
  }
}

TEST(Harness, NumaAwareSchemesKeepPerCorePerformance) {
  // Fig. 20: from 8 cores (1 socket) to 32 cores (4 sockets) the per-core
  // performance of nuCATS/nuCORALS stays high while CORALS collapses.
  FigureSpec spec = fig20();
  spec.cores = {8, 32};
  const FigureResult r = run_figure(spec, tiny_options());
  const auto drop = [&](const std::string& s) {
    return r.values.at(s).front() / r.values.at(s).back();
  };
  EXPECT_LT(drop("nuCATS"), 2.0);
  EXPECT_LT(drop("nuCORALS"), 2.0);
  EXPECT_GT(drop("CORALS"), drop("nuCORALS"));
}

TEST(Harness, ConstantFigureReferenceLinesOrdered) {
  FigureSpec spec = fig07();
  spec.cores = {1, 32};
  const FigureResult r = run_figure(spec, tiny_options());
  for (std::size_t i = 0; i < r.cores.size(); ++i) {
    EXPECT_GT(r.values.at("PeakDP")[i], r.values.at("LL1B0C")[i]);
    EXPECT_GT(r.values.at("SysBIC")[i], r.values.at("SysB0C")[i]);
    // NaiveSSE between the two system-bandwidth bounds (Section IV-D).
    EXPECT_LE(r.values.at("NaiveSSE")[i], r.values.at("SysBIC")[i] * 1.05);
    EXPECT_GE(r.values.at("NaiveSSE")[i], r.values.at("SysB0C")[i] * 0.95);
  }
}

TEST(Harness, TemporalBlockingBeatsSysBandIC) {
  // Being faster than SysBandIC means less than 2 doubles move per update
  // — the signature of working temporal blocking (Section IV-D).
  FigureSpec spec = fig07();
  spec.cores = {32};
  const FigureResult r = run_figure(spec, tiny_options());
  EXPECT_GT(r.values.at("nuCORALS").back(), r.values.at("SysBIC").back());
  EXPECT_GT(r.values.at("nuCATS").back(), r.values.at("SysBIC").back());
}

TEST(Harness, BandedFigureDropsHard) {
  FigureSpec constant = fig09();
  FigureSpec banded = fig15();
  constant.cores = {16};
  banded.cores = {16};
  const auto rc = run_figure(constant, tiny_options());
  const auto rb = run_figure(banded, tiny_options());
  // Section IV-E: the banded case costs several x in Gupdates/s.
  EXPECT_GT(rc.values.at("nuCATS").back(), 2.0 * rb.values.at("nuCATS").back());
  EXPECT_GT(rc.values.at("nuCORALS").back(), 1.5 * rb.values.at("nuCORALS").back());
}

TEST(Harness, ParseOptions) {
  const char* argv[] = {"bench", "--csv", "--domain", "32", "--steps", "5", "--full"};
  const FigureOptions opt = parse_options(7, const_cast<char**>(argv));
  EXPECT_TRUE(opt.csv);
  EXPECT_FALSE(opt.quick);
  EXPECT_EQ(opt.sim_domain, 32);
  EXPECT_EQ(opt.sim_steps, 5);
}

}  // namespace
}  // namespace nustencil::harness
