// Spatial domain decomposition (paper Section III-D).
#include <gtest/gtest.h>

#include <set>

#include "schemes/decompose.hpp"

namespace nustencil::schemes {
namespace {

TEST(DecomposeCounts, NeverCutsUnitStride) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 32}) {
    const Coord counts = decompose_counts(Coord{64, 64, 64}, n);
    EXPECT_EQ(counts[0], 1) << n;
    EXPECT_EQ(counts.product(), n);
  }
}

TEST(DecomposeCounts, PaperExamples) {
  // Section III-D: m = 4D space-time (3 spatial dims), n = 4: two
  // dimensions subdivided into 2 each; n = 8: highest stride into 4.
  const Coord four = decompose_counts(Coord{64, 64, 64}, 4);
  EXPECT_EQ(four[1], 2);
  EXPECT_EQ(four[2], 2);
  const Coord eight = decompose_counts(Coord{64, 64, 64}, 8);
  EXPECT_EQ(eight[2], 4) << "ties favour the higher stride";
  EXPECT_EQ(eight[1], 2);
}

TEST(DecomposeCounts, PrimeThreadCounts) {
  const Coord counts = decompose_counts(Coord{64, 64, 64}, 7);
  EXPECT_EQ(counts.product(), 7);
  EXPECT_EQ(counts[0], 1);
}

TEST(DecomposeCounts, OneAndTwoDimensional) {
  EXPECT_EQ(decompose_counts(Coord{64}, 4)[0], 4);  // 1D has no choice
  const Coord two = decompose_counts(Coord{64, 64}, 6);
  EXPECT_EQ(two[0], 1);
  EXPECT_EQ(two[1], 6);
}

TEST(DecomposeDomain, TilesPartitionExactly) {
  core::Box domain;
  domain.lo = Coord{0, 0, 0};
  domain.hi = Coord{17, 13, 11};  // primes: uneven tiles
  const Coord counts = decompose_counts(domain.hi, 6);
  const auto tiles = decompose_domain(domain, counts);
  ASSERT_EQ(tiles.size(), 6u);
  Index covered = 0;
  for (const auto& t : tiles) {
    EXPECT_FALSE(t.empty());
    covered += t.volume();
  }
  EXPECT_EQ(covered, domain.volume());
  // Disjointness via corner membership.
  std::set<std::tuple<Index, Index, Index>> seen;
  for (const auto& t : tiles)
    for (Index z = t.lo[2]; z < t.hi[2]; ++z)
      for (Index y = t.lo[1]; y < t.hi[1]; ++y)
        EXPECT_TRUE(seen.insert({t.lo[0], y, z}).second);
}

TEST(DecomposeDomain, TileSizesBalanced) {
  core::Box domain;
  domain.lo = Coord{0, 0, 0};
  domain.hi = Coord{64, 100, 100};
  const auto tiles = decompose_domain(domain, decompose_counts(domain.hi, 8));
  Index lo = tiles[0].volume(), hi = tiles[0].volume();
  for (const auto& t : tiles) {
    lo = std::min(lo, t.volume());
    hi = std::max(hi, t.volume());
  }
  EXPECT_LE(hi - lo, hi / 4) << "tiles should be within ~25% of each other";
}

TEST(TileCoord, RoundTripsWithTileIndex) {
  const Coord counts = decompose_counts(Coord{64, 64, 64}, 12);
  for (int i = 0; i < 12; ++i)
    EXPECT_EQ(tile_index(counts, tile_coord(counts, i)), i);
}

TEST(DecomposeDomain, MoreTilesThanElementsThrows) {
  core::Box domain;
  domain.lo = Coord{0, 0, 0};
  domain.hi = Coord{8, 2, 2};
  Coord counts = Coord{1, 1, 4};
  EXPECT_THROW(decompose_domain(domain, counts), Error);
}

}  // namespace
}  // namespace nustencil::schemes
