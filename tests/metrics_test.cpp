// Metrics subsystem: registry sharding/aggregation, JSON writer/parser
// round trips, and the run-report document parsing back into itself.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "metrics/json.hpp"
#include "metrics/registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/schema.hpp"
#include "topology/machine.hpp"

namespace nustencil::metrics {
namespace {

TEST(Registry, CounterAggregatesAcrossShards) {
  Registry reg(4);
  Counter& c = reg.counter("events");
  c.add(0);
  c.add(1, 10);
  c.add(3, 100);
  EXPECT_EQ(c.value(), 111u);
  EXPECT_EQ(reg.snapshot().counters.at("events"), 111u);
}

TEST(Registry, CreateOrGetReturnsStableHandles) {
  Registry reg(2);
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(0, 5);
  EXPECT_EQ(reg.counter("x").value(), 5u);
  // Distinct names are distinct instruments.
  EXPECT_NE(&reg.counter("x"), &reg.counter("y"));
}

TEST(Registry, ConcurrentShardedIncrementsAreExact) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  Registry reg(kThreads);
  Counter& c = reg.counter("hot");  // resolved before the team starts
  std::vector<std::thread> team;
  for (int tid = 0; tid < kThreads; ++tid)
    team.emplace_back([&c, tid] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(tid);
    });
  for (auto& t : team) t.join();
  EXPECT_EQ(c.value(), kPerThread * kThreads);
}

TEST(Registry, GaugeHoldsLastValue) {
  Registry reg(1);
  reg.gauge("g").set(1.5);
  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), 2.5);
}

TEST(Registry, HistogramLog2Buckets) {
  Registry reg(2);
  Histogram& h = reg.histogram("sizes");
  h.observe(0, 0);   // bucket 0
  h.observe(0, 1);   // bucket 1
  h.observe(1, 2);   // bucket 2: [2, 4)
  h.observe(1, 3);   // bucket 2
  h.observe(0, 4);   // bucket 3: [4, 8)
  EXPECT_EQ(h.count(), 5u);
  const std::vector<std::uint64_t> b = h.buckets();
  ASSERT_GE(b.size(), 4u);
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
}

TEST(Json, WriterProducesParseableDocument) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("s", "a \"quoted\" \n string");
  w.kv("i", 42);
  w.kv("d", 0.125);
  w.kv("b", true);
  w.key("null_value").null();
  w.key("arr").begin_array();
  w.value(1).value(2).value(3);
  w.end_array();
  w.key("nested").begin_object();
  w.kv("k", "v");
  w.end_object();
  w.end_object();

  const JsonValue v = parse_json(os.str());
  EXPECT_EQ(v.at("s").str(), "a \"quoted\" \n string");
  EXPECT_DOUBLE_EQ(v.at("i").num(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("d").num(), 0.125);
  EXPECT_TRUE(v.at("b").boolean_value());
  EXPECT_EQ(v.at("null_value").type, JsonValue::Type::Null);
  ASSERT_EQ(v.at("arr").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("arr").array[2].num(), 3.0);
  EXPECT_EQ(v.at("nested").at("k").str(), "v");
}

TEST(Json, DoublesRoundTripExactly) {
  for (const double x : {1.0 / 3.0, 1e-300, 6.02214076e23, -0.0, 12345.6789}) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.kv("x", x);
    w.end_object();
    EXPECT_EQ(parse_json(os.str()).at("x").num(), x);
  }
}

TEST(Json, NonFiniteNumbersBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("nan", std::nan(""));
  w.end_object();
  EXPECT_EQ(parse_json(os.str()).at("nan").type, JsonValue::Type::Null);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  const JsonValue v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  EXPECT_EQ(v.keys(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(parse_json(""), Error);
  EXPECT_THROW(parse_json("{"), Error);
  EXPECT_THROW(parse_json("{} trailing"), Error);
  EXPECT_THROW(parse_json("{'single': 1}"), Error);
  EXPECT_THROW(parse_json("[1, 2,]"), Error);
  EXPECT_THROW(parse_json("nul"), Error);
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  const JsonValue v = parse_json(R"({"s": "\u00e9A"})");
  EXPECT_EQ(v.at("s").str(), "\xc3\xa9"  "A");
}

RunReport minimal_report(const topology::MachineSpec& machine,
                         const Registry* reg) {
  RunReport r;
  r.scheme = "nuCORALS";
  r.shape = "8x8x8";
  r.timesteps = 2;
  r.threads = 2;
  r.kernel_policy = "auto";
  r.kernel_variant = "scalar/generic";
  r.page_bytes = 4096;
  r.seed = 42;
  r.pin_policy = "compact";
  r.machine = &machine;
  r.seconds = 0.5;
  r.updates = 1024;
  r.gupdates_per_second = 1024 / 0.5 * 1e-9;
  r.traffic.local_bytes = 100;
  r.traffic.remote_bytes = 50;
  r.traffic.bytes_from_node = {150, 0};
  r.traffic.node_matrix = {100, 0, 50, 0};
  r.traffic.samples.push_back({512, 60, 40});
  r.traffic.samples.push_back({1024, 40, 10});
  r.registry = reg;
  return r;
}

TEST(RunReportJson, ParsesBackWithAllSections) {
  const topology::MachineSpec machine = topology::xeonX7550();
  Registry reg(2);
  reg.counter("kernel/tiles").add(0, 7);
  reg.gauge("run/seconds").set(0.5);
  reg.histogram("kernel/tile_updates").observe(0, 8);
  const RunReport rep = minimal_report(machine, &reg);

  const JsonValue doc = parse_json(run_report_json(rep));
  EXPECT_EQ(doc.keys(), run_report_top_level_keys());
  EXPECT_EQ(static_cast<int>(doc.at("schema_version").num()),
            kRunReportSchemaVersion);
  EXPECT_EQ(doc.at("config").at("scheme").str(), "nuCORALS");
  EXPECT_EQ(doc.at("machine").at("name").str(), machine.name);
  EXPECT_DOUBLE_EQ(doc.at("result").at("seconds").num(), 0.5);
  EXPECT_EQ(doc.at("result").at("max_rel_diff").type, JsonValue::Type::Null);
  // Matrix rows and the series survive the round trip.
  const JsonValue& matrix = doc.at("traffic").at("node_matrix");
  ASSERT_EQ(matrix.array.size(), 2u);
  EXPECT_DOUBLE_EQ(matrix.array[1].array[0].num(), 50.0);
  EXPECT_EQ(doc.at("traffic").at("locality_series").array.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("kernel/tiles").num(), 7.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("run/seconds").num(), 0.5);
  EXPECT_EQ(doc.at("histograms").at("kernel/tile_updates").array.size(), 5u);
}

TEST(RunReportJson, ExportRunToRegistryAddsGauges) {
  const topology::MachineSpec machine = topology::xeonX7550();
  Registry reg(2);
  const RunReport rep = minimal_report(machine, &reg);
  export_run_to_registry(reg, rep);
  const Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("run/seconds"), 0.5);
  EXPECT_NEAR(snap.gauges.at("traffic/locality"), 100.0 / 150.0, 1e-12);
}

}  // namespace
}  // namespace nustencil::metrics
