// Shared helpers for scheme correctness tests: run a scheme and the
// reference executor on identical problems and compare the results.
#pragma once

#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/reference.hpp"
#include "schemes/scheme.hpp"

namespace nustencil::test {

/// Runs `scheme` and the reference on identical problems; expects exact
/// agreement (Jacobi updates are order-independent, and kernels perform
/// the same FP operations) up to a tiny tolerance for fused/vector paths.
inline schemes::RunResult expect_matches_reference(const schemes::Scheme& scheme,
                                                   Coord shape,
                                                   const core::StencilSpec& stencil,
                                                   const schemes::RunConfig& config) {
  core::Problem actual(shape, stencil);
  const schemes::RunResult result = scheme.run(actual, config);

  core::Problem expected(shape, stencil);
  expected.initialize(config.seed);
  if (!config.boundary.all_periodic(shape.rank())) {
    // Freeze Dirichlet boundary: copy into the second buffer, then only
    // update the interior.
    const core::Box interior = core::updatable_box(shape, stencil, config.boundary);
    double* u0 = expected.buffer(0).data();
    double* u1 = expected.buffer(1).data();
    Coord pos = Coord::filled(shape.rank(), 0);
    for (Index i = 0; i < expected.volume(); ++i) {
      bool inside = true;
      for (int d = 0; d < shape.rank(); ++d)
        inside = inside && pos[d] >= interior.lo[d] && pos[d] < interior.hi[d];
      if (!inside) u1[i] = u0[i];
      for (int d = 0; d < shape.rank(); ++d) {
        if (++pos[d] < shape[d]) break;
        pos[d] = 0;
      }
    }
    core::Executor exec(expected);
    for (long t = 0; t < config.timesteps; ++t) exec.update_box(interior, t, 0);
  } else {
    core::reference_run(expected, config.timesteps);
  }

  const double diff = core::max_rel_diff(actual.buffer(config.timesteps),
                                         expected.buffer(config.timesteps));
  EXPECT_LE(diff, 1e-12) << scheme.name() << " diverged from the reference";
  return result;
}

}  // namespace nustencil::test
