// Work-stealing scheduler: TaskPool unit tests (victim ranking, owner-first
// order, far-end stealing, re-enqueue of blocked/yielded tasks) and the two
// scheme-level guarantees of --schedule=steal — bit-identical results and
// dependency safety under forced stealing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "sched/pool.hpp"
#include "sched/schedule.hpp"
#include "schemes/scheme.hpp"
#include "test_util.hpp"
#include "topology/machine.hpp"

namespace nustencil {
namespace {

using sched::Schedule;
using sched::StepResult;
using sched::TaskPool;

TEST(Schedule, ParseAndName) {
  EXPECT_EQ(sched::parse_schedule("static"), Schedule::Static);
  EXPECT_EQ(sched::parse_schedule("steal"), Schedule::Steal);
  EXPECT_EQ(sched::parse_schedule("steal_local"), Schedule::StealLocal);
  EXPECT_THROW(sched::parse_schedule("greedy"), Error);
  EXPECT_STREQ(sched::schedule_name(Schedule::Steal), "steal");
}

TEST(Schedule, ThreadNodesMirrorPinning) {
  const topology::MachineSpec m = topology::xeonX7550();
  const auto scatter = sched::thread_nodes(m, numa::PinPolicy::Scatter, 6);
  for (int tid = 0; tid < 6; ++tid)
    EXPECT_EQ(scatter[static_cast<std::size_t>(tid)], tid % m.numa_nodes());
  const auto compact = sched::thread_nodes(m, numa::PinPolicy::Compact, 4);
  for (int tid = 0; tid < 4; ++tid)
    EXPECT_EQ(compact[static_cast<std::size_t>(tid)], m.node_of_core(tid));
}

TEST(TaskPool, VictimOrderRanksByNumaDistance) {
  const TaskPool pool(4, {0, 1, 2, 3}, Schedule::Steal);
  // Thread 0: nodes 1, 2, 3 in increasing distance.
  EXPECT_EQ(pool.victim_order(0), (std::vector<int>{1, 2, 3}));
  // Thread 2: threads 1 and 3 tie at distance 1; the ring distance from
  // the thief breaks the tie (3 is one ahead, 1 is three ahead).
  EXPECT_EQ(pool.victim_order(2), (std::vector<int>{3, 1, 0}));
}

TEST(TaskPool, StealLocalDropsForeignNodes) {
  const TaskPool pool(4, {0, 0, 1, 1}, Schedule::StealLocal);
  EXPECT_EQ(pool.victim_order(0), (std::vector<int>{1}));
  EXPECT_EQ(pool.victim_order(2), (std::vector<int>{3}));
  // A lone thread on its node has nobody to steal from.
  const TaskPool lone(2, {0, 1}, Schedule::StealLocal);
  EXPECT_TRUE(lone.victim_order(0).empty());
}

TEST(TaskPool, OwnerDrainsFrontFirst) {
  TaskPool pool(2, {0, 0}, Schedule::Steal);
  pool.reset(5, [](int) { return 0; });
  std::vector<int> order;
  pool.run(0,
           [&](int task, int, bool stolen) {
             EXPECT_FALSE(stolen);
             order.push_back(task);
             return StepResult::Done;
           },
           nullptr, nullptr);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.stats().total_steals(), 0u);
}

TEST(TaskPool, ThiefStealsFromFarEnd) {
  TaskPool pool(2, {0, 0}, Schedule::Steal);
  pool.reset(5, [](int) { return 0; });
  std::vector<int> order;
  // Only the thief runs: every task must arrive via a steal, and in
  // back-to-front order (the far end holds the owner's coldest tiles).
  pool.run(1,
           [&](int task, int, bool stolen) {
             EXPECT_TRUE(stolen);
             order.push_back(task);
             return StepResult::Done;
           },
           nullptr, nullptr);
  EXPECT_EQ(order, (std::vector<int>{4, 3, 2, 1, 0}));
  const sched::SchedStats s = pool.stats();
  EXPECT_EQ(s.threads[1].steals, 5u);
  EXPECT_EQ(s.threads[0].stolen_tasks, 5u);  // credited to the victim
  EXPECT_GE(s.total_attempts(), s.total_steals());
}

TEST(TaskPool, BlockedAndYieldedTasksReenqueueAtOwner) {
  TaskPool pool(2, {0, 0}, Schedule::Steal);
  pool.reset(3, [](int) { return 0; });
  std::vector<int> order;
  bool blocked_once = false, yielded_once = false;
  pool.run(1,
           [&](int task, int, bool) {
             order.push_back(task);
             if (task == 2 && !blocked_once) {
               blocked_once = true;
               return StepResult::Blocked;
             }
             if (task == 0 && !yielded_once) {
               yielded_once = true;
               return StepResult::Yield;
             }
             return StepResult::Done;
           },
           nullptr, nullptr);
  // Task 2 is stolen from the back, blocks, returns to the owner's back
  // and is stolen again; task 0 yields once and likewise comes back.
  EXPECT_EQ(order, (std::vector<int>{2, 2, 1, 0, 0}));
  EXPECT_TRUE(blocked_once);
  EXPECT_TRUE(yielded_once);
}

TEST(TaskPool, TwoWorkersRetireEverythingOnce) {
  TaskPool pool(2, {0, 0}, Schedule::Steal);
  pool.reset(64, [](int task) { return task % 2; });
  std::vector<std::atomic<int>> executed(64);
  for (auto& e : executed) e.store(0);
  const auto worker = [&](int tid) {
    pool.run(tid,
             [&](int task, int, bool) {
               executed[static_cast<std::size_t>(task)].fetch_add(1);
               return StepResult::Done;
             },
             nullptr, nullptr);
  };
  std::thread t1(worker, 1);
  worker(0);
  t1.join();
  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
}

// --- Scheme-level guarantees -------------------------------------------

schemes::RunConfig steal_config(Schedule schedule, const std::string& scheme) {
  schemes::RunConfig cfg;
  cfg.num_threads = 3;
  cfg.timesteps = 5;
  cfg.schedule = schedule;
  if (scheme == "CATS" || scheme == "nuCATS")
    cfg.boundary[2] = core::BoundaryKind::Dirichlet;
  return cfg;
}

/// Runs `scheme` on a prime-extent domain and returns the final buffer.
std::vector<double> run_buffer(const std::string& name, Schedule schedule) {
  const auto scheme = schemes::make_scheme(name);
  const schemes::RunConfig cfg = steal_config(schedule, name);
  core::Problem problem(Coord{23, 19, 17}, core::StencilSpec::paper_3d7p());
  const schemes::RunResult r = scheme->run(problem, cfg);
  EXPECT_EQ(r.sched.enabled, schedule != Schedule::Static) << name;
  const core::Field& out = problem.buffer(cfg.timesteps);
  return std::vector<double>(out.data(), out.data() + problem.volume());
}

class ScheduleDeterminism : public testing::TestWithParam<std::string> {};

// Prime extents put tile boundaries in awkward places; all three
// schedules must still produce bit-identical fields, because stealing
// only moves whole tiles between threads and Jacobi updates do not
// depend on the executing thread.
TEST_P(ScheduleDeterminism, StealMatchesStaticBitForBit) {
  const std::vector<double> base = run_buffer(GetParam(), Schedule::Static);
  for (const Schedule s : {Schedule::Steal, Schedule::StealLocal}) {
    const std::vector<double> other = run_buffer(GetParam(), s);
    ASSERT_EQ(base.size(), other.size());
    EXPECT_EQ(std::memcmp(base.data(), other.data(),
                          base.size() * sizeof(double)),
              0)
        << GetParam() << " diverged under " << sched::schedule_name(s);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScheduleDeterminism,
                         testing::Values("NaiveSSE", "CATS", "nuCATS",
                                         "CORALS", "nuCORALS", "Pochoir"),
                         [](const auto& info) { return info.param; });

class ScheduleDependencySafety : public testing::TestWithParam<std::string> {};

// With check_dependencies on, every single cell update is validated
// against the space-time dependency order — a tile executing before its
// temporal-blocking predecessors (e.g. because a thief ran it too early)
// aborts the run.
TEST_P(ScheduleDependencySafety, NoTileRunsBeforeItsPredecessors) {
  const auto scheme = schemes::make_scheme(GetParam());
  schemes::RunConfig cfg = steal_config(Schedule::Steal, GetParam());
  cfg.check_dependencies = true;
  test::expect_matches_reference(*scheme, Coord{23, 19, 17},
                                 core::StencilSpec::paper_3d7p(), cfg);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ScheduleDependencySafety,
                         testing::Values("NaiveSSE", "CATS", "nuCATS",
                                         "CORALS", "nuCORALS", "Pochoir"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace nustencil
