// Command-line argument parser.
#include <gtest/gtest.h>

#include "common/args.hpp"

namespace nustencil {
namespace {

ArgParser make() {
  ArgParser p("prog", "test program");
  p.add_option("name", "a string", "dflt");
  p.add_option("count", "an int", "7");
  p.add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("name"), "dflt");
  EXPECT_EQ(p.get_long("count"), 7);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, SpaceAndEqualsForms) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {"--name", "abc", "--count=42", "--verbose"}));
  EXPECT_EQ(p.get("name"), "abc");
  EXPECT_EQ(p.get_long("count"), 42);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, Positionals) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {"one", "--count", "3", "two"}));
  EXPECT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positionals()[0], "one");
  EXPECT_EQ(p.positionals()[1], "two");
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--typo"}), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--name"}), Error);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--verbose=yes"}), Error);
}

TEST(ArgParser, NonNumericValueThrows) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--count", "abc"}));
  EXPECT_THROW(p.get_long("count"), Error);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make();
  testing::internal::CaptureStdout();
  EXPECT_FALSE(parse(p, {"--help"}));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--name"), std::string::npos);
  EXPECT_NE(out.find("a string"), std::string::npos);
  EXPECT_NE(out.find("[default: 7]"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("prog", "x");
  p.add_option("a", "h", "");
  EXPECT_THROW(p.add_option("a", "h", ""), Error);
  EXPECT_THROW(p.add_flag("a", "h"), Error);
}

TEST(ArgParser, GetDouble) {
  ArgParser p("prog", "x");
  p.add_option("ratio", "a double", "0.5");
  EXPECT_TRUE(parse(p, {"--ratio", "2.25"}));
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
}

TEST(ArgParser, ValidateThreadCountAcceptsSaneValues) {
  EXPECT_EQ(ArgParser::validate_thread_count(1, 32), 1);
  EXPECT_EQ(ArgParser::validate_thread_count(32, 32), 32);
}

TEST(ArgParser, ValidateThreadCountRejectsNonPositive) {
  EXPECT_THROW(ArgParser::validate_thread_count(0, 32), Error);
  EXPECT_THROW(ArgParser::validate_thread_count(-3, 32), Error);
  try {
    ArgParser::validate_thread_count(-3, 32);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(ArgParser, ValidateThreadCountRejectsMoreThanMachineCores) {
  EXPECT_THROW(ArgParser::validate_thread_count(33, 32), Error);
  try {
    ArgParser::validate_thread_count(33, 32);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("33"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("32"), std::string::npos);
  }
}

}  // namespace
}  // namespace nustencil
