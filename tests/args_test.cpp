// Command-line argument parser.
#include <gtest/gtest.h>

#include <limits>

#include "common/args.hpp"
#include "core/kernels.hpp"
#include "hwc/events.hpp"
#include "schemes/scheme.hpp"
#include "telemetry/sampler.hpp"

namespace nustencil {
namespace {

ArgParser make() {
  ArgParser p("prog", "test program");
  p.add_option("name", "a string", "dflt");
  p.add_option("count", "an int", "7");
  p.add_flag("verbose", "a flag");
  return p;
}

bool parse(ArgParser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()),
                 const_cast<char**>(argv.data()));
}

TEST(ArgParser, DefaultsApply) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {}));
  EXPECT_EQ(p.get("name"), "dflt");
  EXPECT_EQ(p.get_long("count"), 7);
  EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, SpaceAndEqualsForms) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {"--name", "abc", "--count=42", "--verbose"}));
  EXPECT_EQ(p.get("name"), "abc");
  EXPECT_EQ(p.get_long("count"), 42);
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, Positionals) {
  ArgParser p = make();
  EXPECT_TRUE(parse(p, {"one", "--count", "3", "two"}));
  EXPECT_EQ(p.positionals().size(), 2u);
  EXPECT_EQ(p.positionals()[0], "one");
  EXPECT_EQ(p.positionals()[1], "two");
}

TEST(ArgParser, UnknownOptionThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--typo"}), Error);
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--name"}), Error);
}

TEST(ArgParser, FlagWithValueThrows) {
  ArgParser p = make();
  EXPECT_THROW(parse(p, {"--verbose=yes"}), Error);
}

TEST(ArgParser, NonNumericValueThrows) {
  ArgParser p = make();
  ASSERT_TRUE(parse(p, {"--count", "abc"}));
  EXPECT_THROW(p.get_long("count"), Error);
}

TEST(ArgParser, HelpShortCircuits) {
  ArgParser p = make();
  testing::internal::CaptureStdout();
  EXPECT_FALSE(parse(p, {"--help"}));
  const std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("--name"), std::string::npos);
  EXPECT_NE(out.find("a string"), std::string::npos);
  EXPECT_NE(out.find("[default: 7]"), std::string::npos);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser p("prog", "x");
  p.add_option("a", "h", "");
  EXPECT_THROW(p.add_option("a", "h", ""), Error);
  EXPECT_THROW(p.add_flag("a", "h"), Error);
}

TEST(ArgParser, GetDouble) {
  ArgParser p("prog", "x");
  p.add_option("ratio", "a double", "0.5");
  EXPECT_TRUE(parse(p, {"--ratio", "2.25"}));
  EXPECT_DOUBLE_EQ(p.get_double("ratio"), 2.25);
}

TEST(ArgParser, ValidateThreadCountAcceptsSaneValues) {
  EXPECT_EQ(ArgParser::validate_thread_count(1, 32), 1);
  EXPECT_EQ(ArgParser::validate_thread_count(32, 32), 32);
}

TEST(ArgParser, ValidateThreadCountRejectsNonPositive) {
  EXPECT_THROW(ArgParser::validate_thread_count(0, 32), Error);
  EXPECT_THROW(ArgParser::validate_thread_count(-3, 32), Error);
  try {
    ArgParser::validate_thread_count(-3, 32);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("-3"), std::string::npos);
  }
}

TEST(ArgParser, ValidateThreadCountRejectsMoreThanMachineCores) {
  EXPECT_THROW(ArgParser::validate_thread_count(33, 32), Error);
  try {
    ArgParser::validate_thread_count(33, 32);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("33"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("32"), std::string::npos);
  }
}

TEST(ArgParser, ValidatePositiveAcceptsCounts) {
  EXPECT_EQ(ArgParser::validate_positive("--trace-buffer", 1), 1);
  EXPECT_EQ(ArgParser::validate_positive("--trace-buffer", 1 << 20), 1 << 20);
}

TEST(ArgParser, ValidatePositiveRejectsZeroAndNegative) {
  EXPECT_THROW(ArgParser::validate_positive("--trace-buffer", 0), Error);
  EXPECT_THROW(ArgParser::validate_positive("--trace-buffer", -5), Error);
  try {
    ArgParser::validate_positive("--trace-buffer", -5);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The message must name the flag and echo the offending value.
    EXPECT_NE(std::string(e.what()).find("--trace-buffer"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-5"), std::string::npos);
  }
}

TEST(ArgParser, ValidateGroupSizeAcceptsDivisors) {
  EXPECT_EQ(ArgParser::validate_group_size(1, 8), 1);
  EXPECT_EQ(ArgParser::validate_group_size(2, 8), 2);
  EXPECT_EQ(ArgParser::validate_group_size(4, 8), 4);
  EXPECT_EQ(ArgParser::validate_group_size(8, 8), 8);
  EXPECT_EQ(ArgParser::validate_group_size(3, 3), 3);
  EXPECT_EQ(ArgParser::validate_group_size(1, 1), 1);
}

TEST(ArgParser, ValidateGroupSizeRejectsNonPositive) {
  EXPECT_THROW(ArgParser::validate_group_size(0, 8), Error);
  EXPECT_THROW(ArgParser::validate_group_size(-2, 8), Error);
  try {
    ArgParser::validate_group_size(-2, 8);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--group-size"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-2"), std::string::npos);
  }
}

TEST(ArgParser, ValidateGroupSizeRejectsNonDivisorOfThreads) {
  EXPECT_THROW(ArgParser::validate_group_size(3, 8), Error);
  EXPECT_THROW(ArgParser::validate_group_size(16, 8), Error);  // bigger than n
  try {
    ArgParser::validate_group_size(3, 8);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    // The message must echo both the group size and the thread count.
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("8"), std::string::npos);
  }
}

TEST(SchemeOption, MwdSpellingsAreCaseInsensitive) {
  // The CLI lowercases --scheme before the factory lookup; every spelling
  // of the diamond family must resolve to the canonical scheme name.
  for (const char* spelling : {"mwd", "MWD", "Mwd"})
    EXPECT_EQ(schemes::make_scheme(spelling)->name(), "MWD") << spelling;
  for (const char* spelling : {"numwd", "nuMWD", "NUMWD", "NuMwd"})
    EXPECT_EQ(schemes::make_scheme(spelling)->name(), "nuMWD") << spelling;
}

TEST(ArgParser, ValidatePositiveSecondsAcceptsFractions) {
  EXPECT_DOUBLE_EQ(ArgParser::validate_positive_seconds("--progress", 0.25),
                   0.25);
  EXPECT_DOUBLE_EQ(ArgParser::validate_positive_seconds("--progress", 10.0),
                   10.0);
}

TEST(ArgParser, ValidatePositiveSecondsRejectsZeroNegativeAndNonFinite) {
  EXPECT_THROW(ArgParser::validate_positive_seconds("--progress", 0.0), Error);
  EXPECT_THROW(ArgParser::validate_positive_seconds("--progress", -1.5), Error);
  EXPECT_THROW(ArgParser::validate_positive_seconds(
                   "--progress", std::numeric_limits<double>::infinity()),
               Error);
  EXPECT_THROW(ArgParser::validate_positive_seconds(
                   "--progress", std::numeric_limits<double>::quiet_NaN()),
               Error);
  try {
    ArgParser::validate_positive_seconds("--progress", -1.5);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--progress"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-1.5"), std::string::npos);
  }
}

TEST(ArgParser, MalformedNumberForSecondsOptionThrows) {
  // The CLI path is get_double() then validate_positive_seconds(); a
  // malformed value must fail at the parse step, not slip through as 0.
  ArgParser p("prog", "x");
  p.add_option("progress", "heartbeat seconds", "");
  ASSERT_TRUE(parse(p, {"--progress", "2s"}));
  EXPECT_THROW(p.get_double("progress"), Error);
}

/// Mirrors the CLI's kernel-engine options exactly: string option, then
/// core::parse_* on the value, like tools/nustencil_cli.cpp does.
ArgParser make_kernel_parser() {
  ArgParser p("prog", "x");
  p.add_option("kernel", "kernel policy", "auto");
  p.add_option("kernel-stores", "store policy", "auto");
  return p;
}

TEST(ArgParser, KernelPolicyOptionIsCaseInsensitive) {
  for (const char* spelling : {"avx2", "AVX2", "Avx2", "aVx2"}) {
    ArgParser p = make_kernel_parser();
    ASSERT_TRUE(parse(p, {"--kernel", spelling}));
    EXPECT_EQ(core::parse_kernel_policy(p.get("kernel")),
              core::KernelPolicy::AVX2)
        << spelling;
  }
  ArgParser p = make_kernel_parser();
  ASSERT_TRUE(parse(p, {"--kernel=FMA", "--kernel-stores=REGULAR"}));
  EXPECT_EQ(core::parse_kernel_policy(p.get("kernel")),
            core::KernelPolicy::FMA);
  EXPECT_EQ(core::parse_store_policy(p.get("kernel-stores")),
            core::StorePolicy::Regular);
}

TEST(ArgParser, KernelStoresOptionIsCaseInsensitive) {
  for (const char* spelling : {"stream", "Stream", "STREAM", "sTrEaM"}) {
    ArgParser p = make_kernel_parser();
    ASSERT_TRUE(parse(p, {"--kernel-stores", spelling}));
    EXPECT_EQ(core::parse_store_policy(p.get("kernel-stores")),
              core::StorePolicy::Stream)
        << spelling;
  }
}

TEST(ArgParser, BadKernelPolicyListsValidValues) {
  ArgParser p = make_kernel_parser();
  ASSERT_TRUE(parse(p, {"--kernel", "avx512"}));
  try {
    core::parse_kernel_policy(p.get("kernel"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    // Echoes the offending value and lists every accepted one.
    EXPECT_NE(what.find("avx512"), std::string::npos);
    for (const char* valid :
         {"auto", "scalar", "sse2", "avx2", "fma", "generic"})
      EXPECT_NE(what.find(valid), std::string::npos) << valid;
  }
}

TEST(ArgParser, BadKernelStoresListsValidValues) {
  ArgParser p = make_kernel_parser();
  ASSERT_TRUE(parse(p, {"--kernel-stores", "nontemporal"}));
  try {
    core::parse_store_policy(p.get("kernel-stores"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nontemporal"), std::string::npos);
    for (const char* valid : {"auto", "stream", "regular"})
      EXPECT_NE(what.find(valid), std::string::npos) << valid;
  }
}

/// Mirrors the CLI's hardware-counter options exactly: string options,
/// then hwc::parse_* on the values, like tools/nustencil_cli.cpp does.
ArgParser make_hw_parser() {
  ArgParser p("prog", "x");
  p.add_option("hw-counters", "counter mode", "off");
  p.add_option("hw-events", "event list", "");
  return p;
}

TEST(ArgParser, HwCountersModeIsCaseInsensitive) {
  for (const char* spelling : {"auto", "Auto", "AUTO", "aUtO"}) {
    ArgParser p = make_hw_parser();
    ASSERT_TRUE(parse(p, {"--hw-counters", spelling}));
    EXPECT_EQ(hwc::parse_mode(p.get("hw-counters")), hwc::Mode::Auto)
        << spelling;
  }
  ArgParser p = make_hw_parser();
  ASSERT_TRUE(parse(p, {"--hw-counters=ON", "--hw-events=CYCLES,Page_Faults"}));
  EXPECT_EQ(hwc::parse_mode(p.get("hw-counters")), hwc::Mode::On);
  const std::vector<hwc::Event> events =
      hwc::parse_event_list(p.get("hw-events"));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], hwc::Event::Cycles);
  EXPECT_EQ(events[1], hwc::Event::PageFaults);
}

TEST(ArgParser, BadHwCountersModeListsValidValues) {
  ArgParser p = make_hw_parser();
  ASSERT_TRUE(parse(p, {"--hw-counters", "yes"}));
  try {
    hwc::parse_mode(p.get("hw-counters"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'yes'"), std::string::npos);
    for (const char* valid : {"auto", "on", "off"})
      EXPECT_NE(what.find(valid), std::string::npos) << valid;
  }
}

TEST(ArgParser, BadHwEventListsValidValues) {
  ArgParser p = make_hw_parser();
  ASSERT_TRUE(parse(p, {"--hw-events", "cycles,branches"}));
  try {
    hwc::parse_event_list(p.get("hw-events"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'branches'"), std::string::npos);
    for (const char* valid : {"cycles", "instructions", "cache-references",
                              "cache-misses", "stalled-cycles", "task-clock",
                              "page-faults"})
      EXPECT_NE(what.find(valid), std::string::npos) << valid;
  }
}

/// Mirrors the CLI's telemetry options exactly: string/long options, then
/// telemetry::parse_* and the validate_* helpers, like nustencil_cli.cpp.
ArgParser make_telemetry_parser() {
  ArgParser p("prog", "x");
  p.add_option("telemetry", "live telemetry", "off");
  p.add_option("telemetry-interval-ms", "sampling cadence", "100");
  p.add_option("telemetry-openmetrics", "exposition path", "");
  p.add_option("telemetry-log", "event log path", "");
  p.add_option("watchdog-stall-intervals", "stall threshold", "0");
  p.add_option("watchdog", "stall response", "warn");
  return p;
}

TEST(ArgParser, TelemetryFlagsDefaultOff) {
  ArgParser p = make_telemetry_parser();
  ASSERT_TRUE(parse(p, {}));
  EXPECT_FALSE(telemetry::parse_telemetry_enabled(p.get("telemetry")));
  EXPECT_DOUBLE_EQ(ArgParser::validate_positive_ms(
                       "--telemetry-interval-ms",
                       p.get_double("telemetry-interval-ms")),
                   100.0);
  EXPECT_EQ(ArgParser::validate_non_negative(
                "--watchdog-stall-intervals",
                p.get_long("watchdog-stall-intervals")),
            0);
  EXPECT_EQ(telemetry::parse_watchdog_action(p.get("watchdog")),
            telemetry::WatchdogAction::Warn);
}

TEST(ArgParser, TelemetryEnableIsCaseInsensitive) {
  for (const char* spelling : {"on", "On", "ON"}) {
    ArgParser p = make_telemetry_parser();
    ASSERT_TRUE(parse(p, {"--telemetry", spelling}));
    EXPECT_TRUE(telemetry::parse_telemetry_enabled(p.get("telemetry")))
        << spelling;
  }
  for (const char* spelling : {"off", "OFF", "oFf"}) {
    ArgParser p = make_telemetry_parser();
    ASSERT_TRUE(parse(p, {"--telemetry", spelling}));
    EXPECT_FALSE(telemetry::parse_telemetry_enabled(p.get("telemetry")))
        << spelling;
  }
}

TEST(ArgParser, BadTelemetryValueListsValidValues) {
  ArgParser p = make_telemetry_parser();
  ASSERT_TRUE(parse(p, {"--telemetry", "yes"}));
  try {
    telemetry::parse_telemetry_enabled(p.get("telemetry"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find('\n'), std::string::npos);  // one-line error
    EXPECT_NE(what.find("'yes'"), std::string::npos);
    EXPECT_NE(what.find("on"), std::string::npos);
    EXPECT_NE(what.find("off"), std::string::npos);
  }
}

TEST(ArgParser, WatchdogActionIsCaseInsensitive) {
  for (const char* spelling : {"warn", "WARN", "Warn"}) {
    ArgParser p = make_telemetry_parser();
    ASSERT_TRUE(parse(p, {"--watchdog", spelling}));
    EXPECT_EQ(telemetry::parse_watchdog_action(p.get("watchdog")),
              telemetry::WatchdogAction::Warn)
        << spelling;
  }
  for (const char* spelling : {"abort", "Abort", "ABORT"}) {
    ArgParser p = make_telemetry_parser();
    ASSERT_TRUE(parse(p, {"--watchdog", spelling}));
    EXPECT_EQ(telemetry::parse_watchdog_action(p.get("watchdog")),
              telemetry::WatchdogAction::Abort)
        << spelling;
  }
}

TEST(ArgParser, BadWatchdogActionListsValidValues) {
  ArgParser p = make_telemetry_parser();
  ASSERT_TRUE(parse(p, {"--watchdog=kill"}));
  try {
    telemetry::parse_watchdog_action(p.get("watchdog"));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find('\n'), std::string::npos);  // one-line error
    EXPECT_NE(what.find("'kill'"), std::string::npos);
    EXPECT_NE(what.find("warn"), std::string::npos);
    EXPECT_NE(what.find("abort"), std::string::npos);
  }
}

TEST(ArgParser, ValidatePositiveMsRejectsZeroNegativeAndNonFinite) {
  EXPECT_DOUBLE_EQ(
      ArgParser::validate_positive_ms("--telemetry-interval-ms", 0.5), 0.5);
  EXPECT_THROW(ArgParser::validate_positive_ms("--telemetry-interval-ms", 0.0),
               Error);
  EXPECT_THROW(ArgParser::validate_positive_ms("--telemetry-interval-ms", -10),
               Error);
  EXPECT_THROW(ArgParser::validate_positive_ms(
                   "--telemetry-interval-ms",
                   std::numeric_limits<double>::quiet_NaN()),
               Error);
  try {
    ArgParser::validate_positive_ms("--telemetry-interval-ms", -10);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--telemetry-interval-ms"), std::string::npos);
    EXPECT_NE(what.find("milliseconds"), std::string::npos);
  }
}

TEST(ArgParser, ValidateNonNegativeRejectsNegatives) {
  EXPECT_EQ(ArgParser::validate_non_negative("--watchdog-stall-intervals", 0),
            0);
  EXPECT_EQ(ArgParser::validate_non_negative("--watchdog-stall-intervals", 5),
            5);
  try {
    ArgParser::validate_non_negative("--watchdog-stall-intervals", -1);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--watchdog-stall-intervals"), std::string::npos);
    EXPECT_NE(what.find(">= 0"), std::string::npos);
  }
}

}  // namespace
}  // namespace nustencil
