// SVG chart renderer: structure, scaling, escaping, error handling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "report/svg_chart.hpp"

namespace nustencil::report {
namespace {

ChartSpec demo() {
  ChartSpec c;
  c.title = "demo";
  c.x_label = "cores";
  c.y_label = "Gup/s";
  c.x_ticks = {"1", "2", "4"};
  c.series = {{"a", {0.1, 0.2, 0.3}}, {"b", {0.3, 0.2, 0.1}}};
  return c;
}

std::size_t count(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(SvgChart, ContainsOnePolylinePerSeries) {
  const std::string svg = render_svg(demo());
  EXPECT_EQ(count(svg, "<polyline"), 2u);
  EXPECT_EQ(count(svg, "<circle"), 6u);  // one marker per point
  EXPECT_NE(svg.find("demo"), std::string::npos);
  EXPECT_NE(svg.find("Gup/s"), std::string::npos);
  EXPECT_NE(svg.find(">4<"), std::string::npos);  // x tick label
}

TEST(SvgChart, WellFormedDocument) {
  const std::string svg = render_svg(demo());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count(svg, "<svg"), 1u);
}

TEST(SvgChart, NanValuesProduceGaps) {
  ChartSpec c = demo();
  c.series = {{"gappy", {0.1, std::nan(""), 0.3}}};
  const std::string svg = render_svg(c);
  EXPECT_EQ(count(svg, "<circle"), 2u);  // NaN point omitted
}

TEST(SvgChart, TitleIsEscaped) {
  ChartSpec c = demo();
  c.title = "a < b & c";
  const std::string svg = render_svg(c);
  EXPECT_NE(svg.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(svg.find("a < b"), std::string::npos);
}

TEST(SvgChart, HigherValueDrawsHigher) {
  // y grows downward in SVG: the larger value must have the smaller cy.
  ChartSpec c = demo();
  c.series = {{"s", {0.1, 0.9, 0.1}}};
  const std::string svg = render_svg(c);
  std::vector<double> cys;
  for (std::size_t pos = svg.find("cy='"); pos != std::string::npos;
       pos = svg.find("cy='", pos + 4))
    cys.push_back(std::atof(svg.c_str() + pos + 4));
  ASSERT_EQ(cys.size(), 3u);
  EXPECT_LT(cys[1], cys[0]);
  EXPECT_LT(cys[1], cys[2]);
}

TEST(SvgChart, SingleTickCentres) {
  ChartSpec c = demo();
  c.x_ticks = {"32"};
  c.series = {{"s", {0.5}}};
  EXPECT_NO_THROW(render_svg(c));
}

TEST(SvgChart, MismatchedSeriesLengthThrows) {
  ChartSpec c = demo();
  c.series[0].values.pop_back();
  EXPECT_THROW(render_svg(c), nustencil::Error);
}

TEST(SvgChart, EmptyInputsThrow) {
  ChartSpec c = demo();
  c.x_ticks.clear();
  EXPECT_THROW(render_svg(c), nustencil::Error);
  ChartSpec d = demo();
  d.series.clear();
  EXPECT_THROW(render_svg(d), nustencil::Error);
}

TEST(SvgChart, WriteSvgBadPathThrows) {
  EXPECT_THROW(write_svg(demo(), "/nonexistent-dir/x.svg"), nustencil::Error);
}

TEST(SvgChart, AllZeroSeriesStillRenders) {
  ChartSpec c = demo();
  c.series = {{"zero", {0.0, 0.0, 0.0}}};
  EXPECT_NO_THROW(render_svg(c));
}

TimelineSpec timeline_demo() {
  TimelineSpec t;
  t.title = "timeline";
  t.track_labels = {"worker 0", "worker 1"};
  t.class_labels = {"compute", "wait"};
  t.spans = {{0.0, 0.5, 0, 0}, {0.5, 0.8, 0, 1}, {0.1, 0.9, 1, 0}};
  t.t_end = 1.0;
  return t;
}

TEST(SvgTimeline, OneRectPerSpanAndTrackLabels) {
  const std::string svg = render_timeline_svg(timeline_demo());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("worker 0"), std::string::npos);
  EXPECT_NE(svg.find("worker 1"), std::string::npos);
  EXPECT_NE(svg.find("compute"), std::string::npos);  // legend entry
}

TEST(SvgTimeline, OutOfRangeSpanThrows) {
  TimelineSpec bad = timeline_demo();
  bad.spans.push_back({0.0, 0.1, 5, 0});  // track 5 does not exist
  EXPECT_THROW(render_timeline_svg(bad), nustencil::Error);
  TimelineSpec bad_cls = timeline_demo();
  bad_cls.spans.push_back({0.0, 0.1, 0, 9});  // class 9 does not exist
  EXPECT_THROW(render_timeline_svg(bad_cls), nustencil::Error);
}

TEST(SvgTimeline, EmptyTracksThrow) {
  TimelineSpec t = timeline_demo();
  t.track_labels.clear();
  EXPECT_THROW(render_timeline_svg(t), nustencil::Error);
}

TEST(SvgTimeline, NoSpansStillRenders) {
  TimelineSpec t = timeline_demo();
  t.spans.clear();
  EXPECT_NO_THROW(render_timeline_svg(t));
}

HeatmapSpec heatmap_demo() {
  HeatmapSpec h;
  h.title = "traffic";
  h.x_label = "owner";
  h.y_label = "consumer";
  h.x_ticks = {"0", "1"};
  h.y_ticks = {"0", "1"};
  h.values = {4.0, 0.0, 1.0, 3.0};
  return h;
}

TEST(SvgHeatmap, OneCellPerMatrixEntry) {
  const std::string svg = render_heatmap_svg(heatmap_demo());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Background + 4 cells.
  EXPECT_EQ(count(svg, "<rect"), 5u);
  EXPECT_NE(svg.find("consumer"), std::string::npos);
  EXPECT_NE(svg.find(">4<"), std::string::npos);  // in-cell value label
}

TEST(SvgHeatmap, MaxValueCellIsDarkest) {
  // The 4.0 cell saturates the ramp (t = 1: #1f77ff); zero stays white.
  const std::string svg = render_heatmap_svg(heatmap_demo());
  EXPECT_NE(svg.find("#1f77ff"), std::string::npos);
  EXPECT_NE(svg.find("#ffffff"), std::string::npos);
}

TEST(SvgHeatmap, SizeMismatchThrows) {
  HeatmapSpec h = heatmap_demo();
  h.values.pop_back();
  EXPECT_THROW(render_heatmap_svg(h), nustencil::Error);
  HeatmapSpec empty;
  EXPECT_THROW(render_heatmap_svg(empty), nustencil::Error);
}

StackedBarSpec bars_demo() {
  StackedBarSpec b;
  b.title = "phases";
  b.x_label = "thread";
  b.y_label = "seconds";
  b.x_ticks = {"0", "1"};
  b.segments = {{"compute", {0.5, 0.4}}, {"wait", {0.1, 0.2}}};
  return b;
}

TEST(SvgStackedBars, OneRectPerPositiveSegment) {
  const std::string svg = render_stacked_bars_svg(bars_demo());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  // Background + 4 bar segments + 2 legend swatches.
  EXPECT_EQ(count(svg, "<rect"), 7u);
  EXPECT_NE(svg.find("compute"), std::string::npos);
}

TEST(SvgStackedBars, NanAndZeroSegmentsAreSkipped) {
  StackedBarSpec b = bars_demo();
  b.segments = {{"only", {0.5, std::nan("")}}, {"zero", {0.0, 0.0}}};
  const std::string svg = render_stacked_bars_svg(b);
  // Background + 1 drawn segment + 2 legend swatches.
  EXPECT_EQ(count(svg, "<rect"), 4u);
}

TEST(SvgStackedBars, MismatchedSegmentLengthThrows) {
  StackedBarSpec b = bars_demo();
  b.segments[0].values.pop_back();
  EXPECT_THROW(render_stacked_bars_svg(b), nustencil::Error);
}

TEST(SvgHeatmap, DivergingModeSplitsSignsIntoRedAndBlue) {
  HeatmapSpec hm;
  hm.title = "delta";
  hm.x_ticks = {"0", "1"};
  hm.y_ticks = {"0", "1"};
  hm.values = {4.0, -4.0, 0.0, 2.0};
  hm.diverging = true;
  const std::string svg = render_heatmap_svg(hm);
  // The max-|value| cells saturate the red/blue ramps symmetrically and
  // the zero cell stays white.
  EXPECT_NE(svg.find("#ff3737"), std::string::npos);  // +4 (max positive)
  EXPECT_NE(svg.find("#3737ff"), std::string::npos);  // -4 (max negative)
  EXPECT_NE(svg.find("#ffffff"), std::string::npos);  // 0
}

TEST(SvgHeatmap, DivergingNegativeCellsWouldBreakDefaultRamp) {
  // The default ramp computes its colour from v/vmax, which would go
  // negative; diverging mode is the supported path for delta matrices.
  HeatmapSpec hm;
  hm.x_ticks = {"0"};
  hm.y_ticks = {"0"};
  hm.values = {-1.0};
  hm.diverging = true;
  const std::string svg = render_heatmap_svg(hm);
  EXPECT_NE(svg.find("#3737ff"), std::string::npos);
  EXPECT_EQ(svg.find("#ff-"), std::string::npos);  // no malformed hex
}

WaterfallSpec waterfall_demo() {
  WaterfallSpec wf;
  wf.title = "phase deltas";
  wf.x_label = "phase";
  wf.y_label = "seconds";
  wf.labels = {"init", "compute", "barrier"};
  wf.deltas = {0.1, -0.3, 0.05};
  return wf;
}

TEST(SvgWaterfall, OneBarPerDeltaPlusTotal) {
  const std::string svg = render_waterfall_svg(waterfall_demo());
  // Background + 3 delta bars + 1 total bar + 3 legend swatches.
  EXPECT_EQ(count(svg, "<rect"), 8u);
  EXPECT_NE(svg.find("compute"), std::string::npos);
  EXPECT_NE(svg.find("total"), std::string::npos);
  // Increases red, decreases green, net total blue.
  EXPECT_NE(svg.find("#d62728"), std::string::npos);
  EXPECT_NE(svg.find("#2ca02c"), std::string::npos);
  EXPECT_NE(svg.find("#1f77b4"), std::string::npos);
}

TEST(SvgWaterfall, ValueLabelsAreSigned) {
  const std::string svg = render_waterfall_svg(waterfall_demo());
  EXPECT_NE(svg.find("+0.1"), std::string::npos);
  EXPECT_NE(svg.find("-0.3"), std::string::npos);
}

TEST(SvgWaterfall, NanDeltaRendersAsZeroBar) {
  WaterfallSpec wf = waterfall_demo();
  wf.deltas[1] = std::nan("");
  const std::string svg = render_waterfall_svg(wf);
  EXPECT_EQ(count(svg, "<rect"), 8u);  // still one bar per label + total
}

TEST(SvgWaterfall, EmptyOrMismatchedInputsThrow) {
  WaterfallSpec wf;
  EXPECT_THROW(render_waterfall_svg(wf), nustencil::Error);
  wf = waterfall_demo();
  wf.deltas.pop_back();
  EXPECT_THROW(render_waterfall_svg(wf), nustencil::Error);
}

}  // namespace
}  // namespace nustencil::report
