// Threading substrate: team fork-join, barrier, spin flags, progress
// counters, abort propagation, and the tracing hooks of the sync
// primitives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "thread/abort.hpp"
#include "thread/barrier.hpp"
#include "thread/spinflag.hpp"
#include "thread/team.hpp"
#include "trace/trace.hpp"

namespace nustencil::threading {
namespace {

TEST(Team, RunsEveryMemberOnce) {
  Team team(8, /*pin=*/false);
  std::vector<std::atomic<int>> hits(8);
  team.run([&](int tid) { hits[static_cast<std::size_t>(tid)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Team, ReusableAcrossRegions) {
  Team team(4, false);
  std::atomic<int> total{0};
  for (int i = 0; i < 10; ++i) team.run([&](int) { total++; });
  EXPECT_EQ(total.load(), 40);
}

TEST(Team, PropagatesFirstException) {
  Team team(4, false);
  EXPECT_THROW(team.run([&](int tid) {
    if (tid == 2) throw Error("boom");
  }),
               Error);
  // The team survives and remains usable.
  std::atomic<int> total{0};
  team.run([&](int) { total++; });
  EXPECT_EQ(total.load(), 4);
}

TEST(Barrier, SynchronisesPhases) {
  const int n = 6;
  Team team(n, false);
  Barrier barrier(n);
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  team.run([&](int) {
    phase1++;
    barrier.arrive_and_wait();
    if (phase1.load() != n) ok = false;  // all must have passed phase 1
    barrier.arrive_and_wait();
  });
  EXPECT_TRUE(ok.load());
}

TEST(Barrier, ManyRounds) {
  const int n = 4;
  Team team(n, false);
  Barrier barrier(n);
  std::atomic<long> counter{0};
  std::atomic<bool> ok{true};
  team.run([&](int) {
    for (long round = 0; round < 200; ++round) {
      counter++;
      barrier.arrive_and_wait();
      if (counter.load() != n * (round + 1)) ok = false;
      barrier.arrive_and_wait();
    }
  });
  EXPECT_TRUE(ok.load());
}

TEST(Barrier, AbortUnblocksWaiters) {
  Team team(2, false);
  Barrier barrier(2);
  AbortToken abort;
  EXPECT_THROW(team.run([&](int tid) {
    if (tid == 0) {
      abort.trigger();
      throw Error("worker 0 failed");
    }
    barrier.arrive_and_wait(&abort);  // must not hang
  }),
               Error);
}

TEST(FlagArray, SetTestWaitReset) {
  FlagArray flags(4);
  EXPECT_FALSE(flags.test(2));
  flags.set(2);
  EXPECT_TRUE(flags.test(2));
  flags.wait(2);  // returns immediately
  flags.reset();
  EXPECT_FALSE(flags.test(2));
}

TEST(FlagArray, CrossThreadHandoff) {
  FlagArray flags(1);
  std::thread producer([&] {
    std::this_thread::yield();
    flags.set(0);
  });
  flags.wait(0);
  producer.join();
  EXPECT_TRUE(flags.test(0));
}

TEST(ProgressCounter, MonotoneAndWaitable) {
  ProgressCounter c;
  EXPECT_EQ(c.current(), 0);
  c.advance_to(3);
  c.advance_to(3);  // idempotent
  EXPECT_EQ(c.current(), 3);
  c.wait_for(2);  // satisfied
  std::thread producer([&] { c.advance_to(10); });
  c.wait_for(10);
  producer.join();
  EXPECT_EQ(c.current(), 10);
}

TEST(ProgressCounter, AbortThrowsOutOfWait) {
  ProgressCounter c;
  AbortToken abort;
  std::thread killer([&] { abort.trigger(); });
  EXPECT_THROW(c.wait_for(100, &abort), Error);
  killer.join();
}

TEST(AbortToken, CheckThrowsOnlyWhenTriggered) {
  AbortToken abort;
  EXPECT_NO_THROW(abort.check());
  abort.trigger();
  EXPECT_THROW(abort.check(), Error);
}

// ---------------------------------------------------------------------
// Tracing hooks of the synchronisation primitives.
// ---------------------------------------------------------------------

TEST(BarrierTrace, EveryRoundRecordsParticipantsMinusOneWaitSpans) {
  const int n = 4;
  const int rounds = 5;
  Team team(n, false);
  Barrier barrier(n);
  trace::Trace trace;
  trace.begin_run(n);
  team.run([&](int tid) {
    for (int round = 0; round < rounds; ++round)
      barrier.arrive_and_wait(nullptr, trace.thread(tid));
  });
  // The releasing arrival records nothing, so exactly n-1 wait spans per
  // round survive across all threads (which thread waits is timing-
  // dependent, the total is not).
  std::uint64_t spans = 0;
  for (int tid = 0; tid < n; ++tid)
    spans += trace.thread(tid)->span_count(trace::Phase::BarrierWait);
  EXPECT_EQ(spans, static_cast<std::uint64_t>(rounds) * (n - 1));
  for (int tid = 0; tid < n; ++tid)
    for (const trace::Event& e : trace.thread(tid)->events()) {
      EXPECT_EQ(e.phase, trace::Phase::BarrierWait);
      EXPECT_GE(e.end_ns, e.start_ns);
    }
}

TEST(FlagArrayTrace, SatisfiedFastPathRecordsNothing) {
  FlagArray flags(2);
  flags.set(1);
  trace::Trace trace;
  trace.begin_run(1);
  flags.wait(1, nullptr, trace.thread(0), /*owner=*/0);
  EXPECT_EQ(trace.thread(0)->span_count(trace::Phase::SpinWait), 0u);
  EXPECT_EQ(trace.thread(0)->events().size(), 0u);
}

TEST(FlagArrayTrace, BlockedWaitRecordsSpanWithTargetAndOwner) {
  FlagArray flags(3);
  trace::Trace trace;
  trace.begin_run(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    flags.set(2);
  });
  flags.wait(2, nullptr, trace.thread(0), /*owner=*/7);
  producer.join();
  const std::vector<trace::Event> events = trace.thread(0)->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, trace::Phase::SpinWait);
  EXPECT_EQ(events[0].args.a, 2);      // flag index = wait target
  EXPECT_EQ(events[0].args.owner, 7);  // producing tile/thread
  EXPECT_GE(events[0].spins, 1u);
  EXPECT_GT(events[0].end_ns, events[0].start_ns);
}

TEST(ProgressCounterTrace, SatisfiedFastPathRecordsNothing) {
  ProgressCounter c;
  c.advance_to(5);
  trace::Trace trace;
  trace.begin_run(1);
  c.wait_for(3, nullptr, trace.thread(0), /*owner=*/0);
  EXPECT_EQ(trace.thread(0)->span_count(trace::Phase::SpinWait), 0u);
  EXPECT_EQ(trace.thread(0)->events().size(), 0u);
}

TEST(ProgressCounterTrace, BlockedWaitRecordsSpanWithTargetAndOwner) {
  ProgressCounter c;
  trace::Trace trace;
  trace.begin_run(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    c.advance_to(4);
  });
  c.wait_for(4, nullptr, trace.thread(0), /*owner=*/3);
  producer.join();
  const std::vector<trace::Event> events = trace.thread(0)->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, trace::Phase::SpinWait);
  EXPECT_EQ(events[0].args.a, 4);      // wait target
  EXPECT_EQ(events[0].args.owner, 3);  // producing tile/thread
  EXPECT_GE(events[0].spins, 1u);
}

TEST(SyncTrace, NullRecorderAddsNoEventsAndNoSpans) {
  // The no-recorder paths must stay usable (single branch, no clock
  // reads): exercised here exactly as the hot loops call them.
  Barrier barrier(1);
  barrier.arrive_and_wait(nullptr, nullptr);
  FlagArray flags(1);
  flags.set(0);
  flags.wait(0, nullptr, nullptr);
  ProgressCounter c;
  c.advance_to(1);
  c.wait_for(1, nullptr, nullptr);
  SUCCEED();
}

}  // namespace
}  // namespace nustencil::threading
