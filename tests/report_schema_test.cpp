// Golden-field schema tests: the CLI's CSV column set and the run-report
// JSON's top-level keys are output contracts scripts depend on.  These
// tests pin the exact lists; changing either is a deliberate schema
// change (bump kRunReportSchemaVersion in src/metrics/schema.hpp and
// update the goldens here in the same commit).
#include <gtest/gtest.h>

#include "metrics/json.hpp"
#include "metrics/registry.hpp"
#include "metrics/run_report.hpp"
#include "metrics/schema.hpp"
#include "topology/machine.hpp"

namespace nustencil::metrics {
namespace {

TEST(Schema, CsvSummaryColumnsAreGolden) {
  const std::vector<std::string> golden = {"threads",    "seconds",
                                          "Gupdates/s", "GFLOPS",
                                          "locality %", "max rel diff"};
  EXPECT_EQ(csv_summary_columns(), golden);
}

TEST(Schema, CsvPhaseColumnsAreGolden) {
  const std::vector<std::string> golden = {"init_s", "compute_s",
                                          "barrier_wait_s", "spinflag_wait_s",
                                          "imbalance"};
  EXPECT_EQ(csv_phase_columns(), golden);
}

TEST(Schema, CsvDetailColumnPrefix) {
  EXPECT_EQ(csv_detail_column("tau"), "detail_tau");
}

TEST(Schema, RunReportTopLevelKeysAreGolden) {
  const std::vector<std::string> golden = {
      "schema_version", "generator", "provenance", "config",
      "machine",        "result",    "traffic",    "cache",
      "phases",         "sched",     "prof",       "hw",
      "model",          "stats",     "timeseries", "counters",
      "gauges",         "histograms"};
  EXPECT_EQ(run_report_top_level_keys(), golden);
}

TEST(Schema, VersionIsPinned) {
  // Bumped deliberately whenever a golden list above changes.
  // v2: top-level "sched" section + config.schedule.
  // v3: top-level "provenance" and "prof" sections.
  // v4: top-level "stats" section (--reps summaries).
  // v5: top-level "hw" section (measured hardware counters).
  // v6: top-level "timeseries" section (live telemetry rings).
  EXPECT_EQ(kRunReportSchemaVersion, 6);
}

TEST(Schema, EmittedDocumentMatchesDeclaredKeys) {
  // The writer's actual output must carry exactly the declared keys, in
  // order, even for a minimal report with every optional section empty.
  const topology::MachineSpec machine = topology::xeonX7550();
  RunReport rep;
  rep.scheme = "NaiveSSE";
  rep.shape = "4x4x4";
  rep.machine = &machine;
  const JsonValue doc = parse_json(run_report_json(rep));
  EXPECT_EQ(doc.keys(), run_report_top_level_keys());
}

}  // namespace
}  // namespace nustencil::metrics
