// NaiveSSE correctness: reference agreement across dimensions, orders,
// boundary conditions, thread counts; instrumentation sanity.
#include <gtest/gtest.h>

#include "schemes/naive.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

using schemes::NaiveScheme;
using schemes::RunConfig;

TEST(NaiveScheme, SingleThread3D) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.timesteps = 5;
  test::expect_matches_reference(scheme, Coord{16, 12, 10}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NaiveScheme, MultiThread3D) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 4;
  cfg.timesteps = 6;
  test::expect_matches_reference(scheme, Coord{20, 15, 13}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NaiveScheme, Dirichlet) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 3;
  cfg.timesteps = 4;
  cfg.boundary = core::Boundary::dirichlet();
  test::expect_matches_reference(scheme, Coord{12, 11, 9}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NaiveScheme, Banded) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 2;
  cfg.timesteps = 4;
  test::expect_matches_reference(scheme, Coord{14, 10, 8}, core::StencilSpec::banded_star(3, 1),
                                 cfg);
}

TEST(NaiveScheme, HighOrder) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 2;
  cfg.timesteps = 3;
  test::expect_matches_reference(scheme, Coord{16, 14, 12}, core::StencilSpec::stable_star(3, 3),
                                 cfg);
}

TEST(NaiveScheme, TwoDimensional) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 4;
  cfg.timesteps = 7;
  test::expect_matches_reference(scheme, Coord{32, 17}, core::StencilSpec::stable_star(2, 1), cfg);
}

TEST(NaiveScheme, OneDimensional) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 3;
  cfg.timesteps = 5;
  test::expect_matches_reference(scheme, Coord{64}, core::StencilSpec::stable_star(1, 2), cfg);
}

TEST(NaiveScheme, DependencyCheckerPasses) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 4;
  cfg.timesteps = 4;
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{12, 10, 8}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NaiveScheme, InstrumentedLocalityIsHigh) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 8;
  cfg.timesteps = 3;
  cfg.instrument = true;
  core::Problem problem(Coord{32, 32, 32}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  EXPECT_GT(result.updates, 0);
  EXPECT_GT(result.traffic.total_bytes(), 0u);
  // NUMA-aware first touch: the bulk of the traffic must be node-local
  // (only tile-boundary halos are remote).
  EXPECT_GT(result.traffic.locality(), 0.80);
}

TEST(NaiveScheme, UpdateCountMatchesVolumeTimesSteps) {
  NaiveScheme scheme;
  RunConfig cfg;
  cfg.num_threads = 2;
  cfg.timesteps = 5;
  core::Problem problem(Coord{10, 10, 10}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  EXPECT_EQ(result.updates, 1000 * 5);
}

TEST(NaiveScheme, EstimateTrafficBounds) {
  NaiveScheme scheme;
  const auto machine = topology::xeonX7550();
  const auto st = core::StencilSpec::paper_3d7p();
  const auto small = scheme.estimate_traffic(machine, Coord{64, 64, 64}, st, 1, 100);
  const auto large = scheme.estimate_traffic(machine, Coord{500, 500, 500}, st, 32, 100);
  // Small per-thread slices cache well (towards 2 doubles/update); huge
  // domains with many threads approach the zero-caching bound.
  EXPECT_LT(small.mem_doubles_per_update, large.mem_doubles_per_update);
  EXPECT_GE(small.mem_doubles_per_update, 2.0);
  EXPECT_LE(large.mem_doubles_per_update, 8.0);
}

}  // namespace
}  // namespace nustencil
