// CATS / nuCATS correctness: wavefront pipeline vs the reference, with
// dependency checking, banded coefficients, high orders, and multi-chunk
// (timesteps exceeding the wavefront depth) configurations.
#include <gtest/gtest.h>

#include "schemes/cats.hpp"
#include "schemes/cats_common.hpp"
#include "schemes/nucats.hpp"
#include "test_util.hpp"

namespace nustencil {
namespace {

using schemes::CatsScheme;
using schemes::NuCatsScheme;
using schemes::RunConfig;

RunConfig cats_config(int threads, long steps) {
  RunConfig cfg;
  cfg.num_threads = threads;
  cfg.timesteps = steps;
  cfg.boundary[2] = core::BoundaryKind::Dirichlet;  // wavefront dimension
  return cfg;
}

TEST(CatsScheme, SingleThread) {
  CatsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 12, 14}, core::StencilSpec::paper_3d7p(),
                                 cats_config(1, 5));
}

TEST(CatsScheme, MultiThread) {
  CatsScheme scheme;
  test::expect_matches_reference(scheme, Coord{20, 18, 16}, core::StencilSpec::paper_3d7p(),
                                 cats_config(4, 6));
}

TEST(CatsScheme, DependencyOrder) {
  CatsScheme scheme;
  auto cfg = cats_config(4, 5);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NuCatsScheme, SingleThread) {
  NuCatsScheme scheme;
  test::expect_matches_reference(scheme, Coord{16, 12, 14}, core::StencilSpec::paper_3d7p(),
                                 cats_config(1, 5));
}

TEST(NuCatsScheme, MultiThread) {
  NuCatsScheme scheme;
  test::expect_matches_reference(scheme, Coord{20, 18, 16}, core::StencilSpec::paper_3d7p(),
                                 cats_config(4, 6));
}

TEST(NuCatsScheme, DependencyOrder) {
  NuCatsScheme scheme;
  auto cfg = cats_config(4, 5);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{14, 12, 12}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NuCatsScheme, Banded) {
  NuCatsScheme scheme;
  auto cfg = cats_config(2, 4);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{12, 10, 12}, core::StencilSpec::banded_star(3, 1),
                                 cfg);
}

TEST(NuCatsScheme, HighOrder) {
  NuCatsScheme scheme;
  auto cfg = cats_config(2, 3);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{16, 14, 16}, core::StencilSpec::stable_star(3, 2),
                                 cfg);
}

TEST(NuCatsScheme, HighOrderWithSplitTraversalDimension) {
  // Regression: with z_segments == 2 and order s >= 2, the upper segment
  // reads the lower segment's planes at positions up to p-s-1; the
  // original wait only covered p-2s (found by tests/fuzz_test.cpp).
  NuCatsScheme scheme;
  auto cfg = cats_config(4, 8);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{11, 10, 23},
                                 core::StencilSpec::stable_star(3, 2), cfg);
}

TEST(NuCatsScheme, ManyThreadsSmallDomain) {
  NuCatsScheme scheme;
  auto cfg = cats_config(8, 4);
  cfg.check_dependencies = true;
  test::expect_matches_reference(scheme, Coord{12, 16, 12}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NuCatsScheme, DirichletEverywhere) {
  NuCatsScheme scheme;
  auto cfg = cats_config(3, 4);
  cfg.boundary = core::Boundary::dirichlet();
  test::expect_matches_reference(scheme, Coord{14, 13, 12}, core::StencilSpec::paper_3d7p(), cfg);
}

TEST(NuCatsScheme, InstrumentedLocality) {
  NuCatsScheme scheme;
  auto cfg = cats_config(8, 4);
  cfg.instrument = true;
  core::Problem problem(Coord{32, 32, 32}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  EXPECT_GT(result.traffic.locality(), 0.6)
      << "nuCATS assigns tiles to their owning threads; most traffic is local";
}

TEST(CatsScheme, InstrumentedLocalityIsPoor) {
  CatsScheme scheme;
  auto cfg = cats_config(8, 4);
  cfg.instrument = true;
  core::Problem problem(Coord{32, 32, 32}, core::StencilSpec::paper_3d7p());
  const auto result = scheme.run(problem, cfg);
  // Serial first touch puts every page on node 0; with 8 threads the Xeon
  // topology spans 1 socket only... use more: locality == fraction on own
  // node. With 8 threads all on socket 0 everything is "local" — so this
  // assertion uses 16 threads instead.
  (void)result;
  auto cfg16 = cats_config(16, 4);
  cfg16.instrument = true;
  core::Problem p16(Coord{32, 32, 32}, core::StencilSpec::paper_3d7p());
  const auto r16 = scheme.run(p16, cfg16);
  EXPECT_LT(r16.traffic.locality(), 0.7)
      << "CATS serial init places all pages on node 0";
}

TEST(CatsPlan, TileCountDividesThreadsForNuCats) {
  const auto machine = topology::xeonX7550();
  core::Box box;
  box.lo = Coord{0, 0, 1};
  box.hi = Coord{160, 160, 159};
  const auto st = core::StencilSpec::paper_3d7p();
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    const auto plan = schemes::plan_cats(box, st, machine, threads, 100, true);
    EXPECT_TRUE(plan.num_tiles() % threads == 0 || plan.num_tiles() == threads)
        << "threads=" << threads << " tiles=" << plan.num_tiles();
  }
}

TEST(CatsPlan, ChunkShrinksForBanded) {
  const auto machine = topology::opteron8222();
  core::Box box;
  box.lo = Coord{0, 0, 1};
  box.hi = Coord{200, 200, 199};
  const auto constant = schemes::plan_cats(box, core::StencilSpec::paper_3d7p(), machine, 16,
                                           100, true);
  const auto banded = schemes::plan_cats(box, core::StencilSpec::banded_star(3, 1), machine, 16,
                                         100, true);
  EXPECT_LE(banded.chunk * banded.wy, constant.chunk * constant.wy)
      << "coefficient bands enlarge the wavefront working set";
}

}  // namespace
}  // namespace nustencil
